//! A uniform registry of every lock in the suite.
//!
//! The experiment harness and the Criterion benches iterate over "all
//! algorithms" dozens of times; this module centralises the list so adding a
//! new algorithm automatically enrols it in every experiment.

use std::fmt;
use std::sync::Arc;

use bakery_core::registers::OverflowPolicy;
use bakery_core::{BakeryLock, BakeryPlusPlusLock, NProcessMutex, ScanMode, TreeBakery};

use crate::{
    BlackWhiteBakeryLock, DijkstraLock, FilterLock, ModuloBakeryLock, PetersonLock, SzymanskiLock,
    TasLock, TicketLock, TournamentLock, TtasLock,
};

/// Identifier for each algorithm in the suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum AlgorithmId {
    Bakery,
    BakeryPlusPlus,
    TreeBakery,
    BlackWhiteBakery,
    ModuloBakery,
    Peterson,
    PetersonTournament,
    Filter,
    Szymanski,
    Dijkstra,
    TicketLock,
    Tas,
    Ttas,
}

impl AlgorithmId {
    /// All identifiers, in report order.
    #[must_use]
    pub fn all() -> &'static [AlgorithmId] {
        &[
            AlgorithmId::Bakery,
            AlgorithmId::BakeryPlusPlus,
            AlgorithmId::TreeBakery,
            AlgorithmId::BlackWhiteBakery,
            AlgorithmId::ModuloBakery,
            AlgorithmId::Peterson,
            AlgorithmId::PetersonTournament,
            AlgorithmId::Filter,
            AlgorithmId::Szymanski,
            AlgorithmId::Dijkstra,
            AlgorithmId::TicketLock,
            AlgorithmId::Tas,
            AlgorithmId::Ttas,
        ]
    }

    /// The short name used in tables (matches `RawNProcessLock::algorithm_name`).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            AlgorithmId::Bakery => "bakery",
            AlgorithmId::BakeryPlusPlus => "bakery++",
            AlgorithmId::TreeBakery => "tree-bakery",
            AlgorithmId::BlackWhiteBakery => "black-white-bakery",
            AlgorithmId::ModuloBakery => "modulo-bakery",
            AlgorithmId::Peterson => "peterson",
            AlgorithmId::PetersonTournament => "peterson-tournament",
            AlgorithmId::Filter => "filter",
            AlgorithmId::Szymanski => "szymanski",
            AlgorithmId::Dijkstra => "dijkstra",
            AlgorithmId::TicketLock => "ticket-lock",
            AlgorithmId::Tas => "tas",
            AlgorithmId::Ttas => "ttas",
        }
    }

    /// True for algorithms that avoid lower-level mutual exclusion (no atomic
    /// read-modify-write instructions) — the paper's notion of a *true*
    /// mutual exclusion algorithm.
    #[must_use]
    pub fn is_true_mutex(&self) -> bool {
        !matches!(
            self,
            AlgorithmId::TicketLock | AlgorithmId::Tas | AlgorithmId::Ttas
        )
    }

    /// True for algorithms that serve processes in first-come-first-served
    /// order (at the doorway granularity).
    #[must_use]
    pub fn is_fcfs(&self) -> bool {
        matches!(
            self,
            AlgorithmId::Bakery
                | AlgorithmId::BakeryPlusPlus
                | AlgorithmId::BlackWhiteBakery
                | AlgorithmId::ModuloBakery
                | AlgorithmId::Szymanski
                | AlgorithmId::TicketLock
        )
    }

    /// True for algorithms whose shared ticket registers are bounded.
    #[must_use]
    pub fn is_bounded(&self) -> bool {
        !matches!(self, AlgorithmId::Bakery | AlgorithmId::TicketLock)
    }

    /// Whether the algorithm can be instantiated for `n` participants.
    #[must_use]
    pub fn supports(&self, n: usize) -> bool {
        match self {
            AlgorithmId::Peterson => n == 2,
            _ => n >= 1,
        }
    }
}

impl fmt::Display for AlgorithmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Builds locks by [`AlgorithmId`].
#[derive(Debug, Clone, Copy)]
pub struct LockFactory {
    /// Register bound `M` applied to the bound-aware algorithms
    /// (Bakery++ and, as its wrap-around failure mode, bounded classic Bakery
    /// when `bounded_classic` is set).
    pub bound: u64,
    /// When true the classic Bakery is built with bounded (wrapping)
    /// registers instead of 64-bit ones.
    pub bounded_classic: bool,
    /// Scan mode applied to the Bakery-family locks (packed snapshot plane
    /// vs the padded seed layout), so E6/E7 can compare like for like.
    pub scan_mode: ScanMode,
}

impl Default for LockFactory {
    fn default() -> Self {
        Self {
            bound: bakery_core::DEFAULT_PP_BOUND,
            bounded_classic: false,
            scan_mode: ScanMode::Packed,
        }
    }
}

impl LockFactory {
    /// Creates a factory with the default Bakery++ bound.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the register bound used for bound-aware locks.
    #[must_use]
    pub fn with_bound(mut self, bound: u64) -> Self {
        self.bound = bound;
        self
    }

    /// Makes the classic Bakery use bounded wrapping registers.
    #[must_use]
    pub fn with_bounded_classic(mut self, bounded: bool) -> Self {
        self.bounded_classic = bounded;
        self
    }

    /// Sets the scan mode for the Bakery-family locks.
    #[must_use]
    pub fn with_scan_mode(mut self, mode: ScanMode) -> Self {
        self.scan_mode = mode;
        self
    }

    /// Instantiates the lock `id` for `n` processes.
    ///
    /// # Panics
    /// Panics if `id` does not support `n` participants (only Peterson is
    /// restricted, to exactly two).
    #[must_use]
    pub fn build(&self, id: AlgorithmId, n: usize) -> Arc<dyn NProcessMutex + Send + Sync> {
        assert!(
            id.supports(n),
            "{id} does not support {n} participating processes"
        );
        match id {
            AlgorithmId::Bakery => {
                let bound = if self.bounded_classic {
                    self.bound
                } else {
                    bakery_core::DEFAULT_BOUND
                };
                Arc::new(BakeryLock::with_config(
                    n,
                    bound,
                    OverflowPolicy::Wrap,
                    self.scan_mode,
                ))
            }
            AlgorithmId::BakeryPlusPlus => Arc::new(BakeryPlusPlusLock::with_bound_and_mode(
                n,
                self.bound,
                self.scan_mode,
            )),
            // The tree fixes its per-node bound at M = arity + 1 (the
            // smallest bound that admits a full round of K tickets), so the
            // factory's `bound` knob intentionally does not apply here.
            AlgorithmId::TreeBakery => Arc::new(TreeBakery::with_config(
                n,
                bakery_core::DEFAULT_TREE_ARITY,
                self.scan_mode,
            )),
            AlgorithmId::BlackWhiteBakery => Arc::new(BlackWhiteBakeryLock::new(n)),
            AlgorithmId::ModuloBakery => Arc::new(ModuloBakeryLock::new(n)),
            AlgorithmId::Peterson => Arc::new(PetersonLock::new()),
            AlgorithmId::PetersonTournament => Arc::new(TournamentLock::new(n)),
            AlgorithmId::Filter => Arc::new(FilterLock::new(n)),
            AlgorithmId::Szymanski => Arc::new(SzymanskiLock::new(n)),
            AlgorithmId::Dijkstra => Arc::new(DijkstraLock::new(n)),
            AlgorithmId::TicketLock => Arc::new(TicketLock::new(n)),
            AlgorithmId::Tas => Arc::new(TasLock::new(n)),
            AlgorithmId::Ttas => Arc::new(TtasLock::new(n)),
        }
    }
}

/// Builds every algorithm that supports `n` participants.
#[must_use]
pub fn all_algorithms(
    n: usize,
    factory: &LockFactory,
) -> Vec<(AlgorithmId, Arc<dyn NProcessMutex + Send + Sync>)> {
    AlgorithmId::all()
        .iter()
        .copied()
        .filter(|id| id.supports(n))
        .map(|id| (id, factory.build(id, n)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_lock_implementations() {
        let factory = LockFactory::new();
        for &id in AlgorithmId::all() {
            let n = if id == AlgorithmId::Peterson { 2 } else { 3 };
            let lock = factory.build(id, n);
            assert_eq!(lock.algorithm_name(), id.name(), "{id:?}");
            assert!(lock.capacity() >= 2);
        }
    }

    #[test]
    fn peterson_is_restricted_to_two() {
        assert!(AlgorithmId::Peterson.supports(2));
        assert!(!AlgorithmId::Peterson.supports(3));
        assert!(AlgorithmId::Bakery.supports(7));
    }

    #[test]
    fn all_algorithms_excludes_unsupported() {
        let factory = LockFactory::new();
        let at_three = all_algorithms(3, &factory);
        assert!(at_three.iter().all(|(id, _)| *id != AlgorithmId::Peterson));
        let at_two = all_algorithms(2, &factory);
        assert!(at_two.iter().any(|(id, _)| *id == AlgorithmId::Peterson));
        assert_eq!(at_two.len(), AlgorithmId::all().len());
    }

    #[test]
    fn classification_flags() {
        assert!(AlgorithmId::BakeryPlusPlus.is_true_mutex());
        assert!(!AlgorithmId::Tas.is_true_mutex());
        assert!(AlgorithmId::Bakery.is_fcfs());
        assert!(!AlgorithmId::Filter.is_fcfs());
        assert!(AlgorithmId::BakeryPlusPlus.is_bounded());
        assert!(!AlgorithmId::Bakery.is_bounded());
        // The tree composite: true mutex (pure reads/writes), bounded by
        // construction, but only per-node FCFS — not globally.
        assert!(AlgorithmId::TreeBakery.is_true_mutex());
        assert!(AlgorithmId::TreeBakery.is_bounded());
        assert!(!AlgorithmId::TreeBakery.is_fcfs());
    }

    #[test]
    fn tree_bakery_builds_at_large_n_with_fixed_node_bound() {
        let factory = LockFactory::new().with_bound(9_999);
        let lock = factory.build(AlgorithmId::TreeBakery, 300);
        assert_eq!(lock.capacity(), 300);
        assert_eq!(
            lock.register_bound(),
            Some(bakery_core::DEFAULT_TREE_ARITY as u64 + 1),
            "the factory bound must not override the per-node M = K + 1"
        );
        let slot = lock.register().unwrap();
        drop(lock.lock(&slot));
        assert_eq!(lock.stats().cs_entries(), 1);
        // Scan mode reaches every node: padded trees have no packed plane.
        let padded = LockFactory::new()
            .with_scan_mode(ScanMode::Padded)
            .build(AlgorithmId::TreeBakery, 16);
        let slot = padded.register().unwrap();
        drop(padded.lock(&slot));
        assert_eq!(padded.stats().fast_path_hits(), 0);
    }

    #[test]
    fn factory_bound_applies_to_bakery_pp() {
        let factory = LockFactory::new().with_bound(42);
        let lock = factory.build(AlgorithmId::BakeryPlusPlus, 3);
        assert_eq!(lock.register_bound(), Some(42));
        let classic = factory.build(AlgorithmId::Bakery, 3);
        assert_eq!(classic.register_bound(), Some(u64::MAX));
        let bounded = factory
            .with_bounded_classic(true)
            .build(AlgorithmId::Bakery, 3);
        assert_eq!(bounded.register_bound(), Some(42));
    }

    #[test]
    fn factory_scan_mode_applies_to_bakery_family() {
        let padded = LockFactory::new().with_scan_mode(ScanMode::Padded);
        for id in [AlgorithmId::Bakery, AlgorithmId::BakeryPlusPlus] {
            let lock = padded.build(id, 2);
            let slot = lock.register().unwrap();
            drop(lock.lock(&slot));
            assert_eq!(lock.stats().fast_path_hits(), 0, "{id}: padded has no fast path");
        }
        let packed = LockFactory::new();
        for id in [AlgorithmId::Bakery, AlgorithmId::BakeryPlusPlus] {
            let lock = packed.build(id, 2);
            let slot = lock.register().unwrap();
            drop(lock.lock(&slot));
            assert_eq!(lock.stats().fast_path_hits(), 1, "{id}: uncontended fast path");
        }
    }

    #[test]
    fn every_algorithm_enters_a_critical_section() {
        let factory = LockFactory::new();
        for (id, lock) in all_algorithms(2, &factory) {
            let slot = lock.register().unwrap();
            for _ in 0..3 {
                let _g = lock.lock(&slot);
            }
            assert_eq!(lock.stats().cs_entries(), 3, "{id}");
        }
    }
}
