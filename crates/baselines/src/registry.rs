//! A uniform registry of every lock in the suite.
//!
//! The experiment harness and the Criterion benches iterate over "all
//! algorithms" dozens of times; this module centralises the list so adding a
//! new algorithm automatically enrols it in every experiment.
//!
//! Since the trait unification ([`RawMutexAlgorithm`]) the registry is a
//! single **metadata table**: one [`AlgorithmEntry`] row per algorithm
//! carrying its name, classification flags and constructor.  [`AlgorithmId`]
//! is a plain key into that table — it owns no `match` arms, so an algorithm
//! is described in exactly one place and every consumer (factory, harness,
//! benches, conformance plane) picks it up from there.

use std::fmt;
use std::sync::Arc;

use bakery_core::registers::OverflowPolicy;
use bakery_core::{
    AdaptiveBakery, BakeryLock, BakeryPlusPlusLock, RawMutexAlgorithm, ScanMode, TreeBakery,
};

use crate::{
    BlackWhiteBakeryLock, DijkstraLock, FilterLock, ModuloBakeryLock, PetersonLock, SzymanskiLock,
    TasLock, TicketLock, TournamentLock, TtasLock,
};

/// Identifier for each algorithm in the suite (a key into the registry
/// table; all metadata lives in the table entry, not in `match` arms here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum AlgorithmId {
    Bakery,
    BakeryPlusPlus,
    TreeBakery,
    AdaptiveBakery,
    BlackWhiteBakery,
    ModuloBakery,
    Peterson,
    PetersonTournament,
    Filter,
    Szymanski,
    Dijkstra,
    TicketLock,
    Tas,
    Ttas,
}

/// One registry row: everything the suite knows about an algorithm.
pub struct AlgorithmEntry {
    /// The key of this row.
    pub id: AlgorithmId,
    /// The short name used in tables (matches
    /// [`RawMutexAlgorithm::algorithm_name`]).
    pub name: &'static str,
    /// True for algorithms that avoid lower-level mutual exclusion (no
    /// atomic read-modify-write instructions) — the paper's notion of a
    /// *true* mutual exclusion algorithm.
    pub true_mutex: bool,
    /// True for algorithms that serve processes in first-come-first-served
    /// order (at the doorway granularity).
    pub fcfs: bool,
    /// True for algorithms whose shared ticket registers are bounded.
    pub bounded: bool,
    /// The exact participant count the algorithm requires, if restricted
    /// (`Some(2)` for Peterson); `None` means any `n >= 1`.
    pub exact_n: Option<usize>,
    /// Constructor: builds the lock for `n` processes with the factory's
    /// configuration applied.
    build: fn(&LockFactory, usize) -> Arc<dyn RawMutexAlgorithm>,
}

impl fmt::Debug for AlgorithmEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AlgorithmEntry")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("true_mutex", &self.true_mutex)
            .field("fcfs", &self.fcfs)
            .field("bounded", &self.bounded)
            .field("exact_n", &self.exact_n)
            .finish()
    }
}

/// The registry table, in report order.  This is the single place an
/// algorithm is described; `AlgorithmId` methods and [`LockFactory::build`]
/// are lookups into it.
pub static ALGORITHMS: &[AlgorithmEntry] = &[
    AlgorithmEntry {
        id: AlgorithmId::Bakery,
        name: "bakery",
        true_mutex: true,
        fcfs: true,
        bounded: false,
        exact_n: None,
        build: |factory, n| {
            let bound = if factory.bounded_classic {
                factory.bound
            } else {
                bakery_core::DEFAULT_BOUND
            };
            Arc::new(BakeryLock::with_config(
                n,
                bound,
                OverflowPolicy::Wrap,
                factory.scan_mode,
            ))
        },
    },
    AlgorithmEntry {
        id: AlgorithmId::BakeryPlusPlus,
        name: "bakery++",
        true_mutex: true,
        fcfs: true,
        bounded: true,
        exact_n: None,
        build: |factory, n| {
            Arc::new(BakeryPlusPlusLock::with_bound_and_mode(
                n,
                factory.bound,
                factory.scan_mode,
            ))
        },
    },
    AlgorithmEntry {
        id: AlgorithmId::TreeBakery,
        name: "tree-bakery",
        true_mutex: true,
        // FCFS per node only; globally tournament-shaped.
        fcfs: false,
        bounded: true,
        exact_n: None,
        // The tree fixes its per-node bound at M = arity + 1 (the smallest
        // bound that admits a full round of K tickets), so the factory's
        // `bound` knob intentionally does not apply here.
        build: |factory, n| {
            Arc::new(TreeBakery::with_config(
                n,
                bakery_core::DEFAULT_TREE_ARITY,
                factory.scan_mode,
            ))
        },
    },
    AlgorithmEntry {
        id: AlgorithmId::AdaptiveBakery,
        name: "adaptive-bakery",
        // The steady-state planes are pure reads/writes, but the handoff
        // control words (epoch CAS, flat_active fetch-add) are RMW — by the
        // paper's strict definition that disqualifies "true" status.
        true_mutex: false,
        // FCFS while flat; tournament-shaped after the migration.
        fcfs: false,
        bounded: true,
        exact_n: None,
        // Thresholds stay at the adaptive defaults (owned by bakery-core);
        // both planes follow the factory's scan mode (the bound knob does
        // not apply, mirroring the tree entry).
        build: |factory, n| Arc::new(AdaptiveBakery::with_mode(n, factory.scan_mode)),
    },
    AlgorithmEntry {
        id: AlgorithmId::BlackWhiteBakery,
        name: "black-white-bakery",
        true_mutex: true,
        fcfs: true,
        bounded: true,
        exact_n: None,
        build: |_, n| Arc::new(BlackWhiteBakeryLock::new(n)),
    },
    AlgorithmEntry {
        id: AlgorithmId::ModuloBakery,
        name: "modulo-bakery",
        true_mutex: true,
        fcfs: true,
        bounded: true,
        exact_n: None,
        build: |_, n| Arc::new(ModuloBakeryLock::new(n)),
    },
    AlgorithmEntry {
        id: AlgorithmId::Peterson,
        name: "peterson",
        true_mutex: true,
        fcfs: false,
        bounded: true,
        exact_n: Some(2),
        build: |_, _| Arc::new(PetersonLock::new()),
    },
    AlgorithmEntry {
        id: AlgorithmId::PetersonTournament,
        name: "peterson-tournament",
        true_mutex: true,
        fcfs: false,
        bounded: true,
        exact_n: None,
        build: |_, n| Arc::new(TournamentLock::new(n)),
    },
    AlgorithmEntry {
        id: AlgorithmId::Filter,
        name: "filter",
        true_mutex: true,
        fcfs: false,
        bounded: true,
        exact_n: None,
        build: |_, n| Arc::new(FilterLock::new(n)),
    },
    AlgorithmEntry {
        id: AlgorithmId::Szymanski,
        name: "szymanski",
        true_mutex: true,
        fcfs: true,
        bounded: true,
        exact_n: None,
        build: |_, n| Arc::new(SzymanskiLock::new(n)),
    },
    AlgorithmEntry {
        id: AlgorithmId::Dijkstra,
        name: "dijkstra",
        true_mutex: true,
        fcfs: false,
        bounded: true,
        exact_n: None,
        build: |_, n| Arc::new(DijkstraLock::new(n)),
    },
    AlgorithmEntry {
        id: AlgorithmId::TicketLock,
        name: "ticket-lock",
        true_mutex: false,
        fcfs: true,
        bounded: false,
        exact_n: None,
        build: |_, n| Arc::new(TicketLock::new(n)),
    },
    AlgorithmEntry {
        id: AlgorithmId::Tas,
        name: "tas",
        true_mutex: false,
        fcfs: false,
        bounded: true,
        exact_n: None,
        build: |_, n| Arc::new(TasLock::new(n)),
    },
    AlgorithmEntry {
        id: AlgorithmId::Ttas,
        name: "ttas",
        true_mutex: false,
        fcfs: false,
        bounded: true,
        exact_n: None,
        build: |_, n| Arc::new(TtasLock::new(n)),
    },
];

impl AlgorithmId {
    /// All identifiers, in report order (the table's order).
    #[must_use]
    pub fn all() -> &'static [AlgorithmId] {
        const ALL: [AlgorithmId; 14] = [
            AlgorithmId::Bakery,
            AlgorithmId::BakeryPlusPlus,
            AlgorithmId::TreeBakery,
            AlgorithmId::AdaptiveBakery,
            AlgorithmId::BlackWhiteBakery,
            AlgorithmId::ModuloBakery,
            AlgorithmId::Peterson,
            AlgorithmId::PetersonTournament,
            AlgorithmId::Filter,
            AlgorithmId::Szymanski,
            AlgorithmId::Dijkstra,
            AlgorithmId::TicketLock,
            AlgorithmId::Tas,
            AlgorithmId::Ttas,
        ];
        &ALL
    }

    /// This algorithm's registry row — an O(1) index: the table is kept in
    /// enum declaration order, pinned by the registry tests.
    #[must_use]
    pub fn entry(&self) -> &'static AlgorithmEntry {
        let entry = &ALGORITHMS[*self as usize];
        debug_assert_eq!(entry.id, *self, "ALGORITHMS must stay in enum order");
        entry
    }

    /// The short name used in tables (matches
    /// [`RawMutexAlgorithm::algorithm_name`]).
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.entry().name
    }

    /// True for algorithms that avoid lower-level mutual exclusion (no atomic
    /// read-modify-write instructions) — the paper's notion of a *true*
    /// mutual exclusion algorithm.
    #[must_use]
    pub fn is_true_mutex(&self) -> bool {
        self.entry().true_mutex
    }

    /// True for algorithms that serve processes in first-come-first-served
    /// order (at the doorway granularity).
    #[must_use]
    pub fn is_fcfs(&self) -> bool {
        self.entry().fcfs
    }

    /// True for algorithms whose shared ticket registers are bounded.
    #[must_use]
    pub fn is_bounded(&self) -> bool {
        self.entry().bounded
    }

    /// Whether the algorithm can be instantiated for `n` participants.
    #[must_use]
    pub fn supports(&self, n: usize) -> bool {
        match self.entry().exact_n {
            Some(exact) => n == exact,
            None => n >= 1,
        }
    }
}

impl fmt::Display for AlgorithmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Builds locks by [`AlgorithmId`].
#[derive(Debug, Clone, Copy)]
pub struct LockFactory {
    /// Register bound `M` applied to the bound-aware algorithms
    /// (Bakery++ and, as its wrap-around failure mode, bounded classic Bakery
    /// when `bounded_classic` is set).
    pub bound: u64,
    /// When true the classic Bakery is built with bounded (wrapping)
    /// registers instead of 64-bit ones.
    pub bounded_classic: bool,
    /// Scan mode applied to the Bakery-family locks (packed snapshot plane
    /// vs the padded seed layout), so E6/E7 can compare like for like.
    pub scan_mode: ScanMode,
}

impl Default for LockFactory {
    fn default() -> Self {
        Self {
            bound: bakery_core::DEFAULT_PP_BOUND,
            bounded_classic: false,
            scan_mode: ScanMode::Packed,
        }
    }
}

impl LockFactory {
    /// Creates a factory with the default Bakery++ bound.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the register bound used for bound-aware locks.
    #[must_use]
    pub fn with_bound(mut self, bound: u64) -> Self {
        self.bound = bound;
        self
    }

    /// Makes the classic Bakery use bounded wrapping registers.
    #[must_use]
    pub fn with_bounded_classic(mut self, bounded: bool) -> Self {
        self.bounded_classic = bounded;
        self
    }

    /// Sets the scan mode for the Bakery-family locks.
    #[must_use]
    pub fn with_scan_mode(mut self, mode: ScanMode) -> Self {
        self.scan_mode = mode;
        self
    }

    /// Instantiates the lock `id` for `n` processes by calling its registry
    /// entry's constructor.
    ///
    /// # Panics
    /// Panics if `id` does not support `n` participants (only Peterson is
    /// restricted, to exactly two).
    #[must_use]
    pub fn build(&self, id: AlgorithmId, n: usize) -> Arc<dyn RawMutexAlgorithm> {
        assert!(
            id.supports(n),
            "{id} does not support {n} participating processes"
        );
        (id.entry().build)(self, n)
    }
}

/// Builds every algorithm that supports `n` participants.
#[must_use]
pub fn all_algorithms(
    n: usize,
    factory: &LockFactory,
) -> Vec<(AlgorithmId, Arc<dyn RawMutexAlgorithm>)> {
    ALGORITHMS
        .iter()
        .filter(|entry| entry.id.supports(n))
        .map(|entry| (entry.id, factory.build(entry.id, n)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_lock_implementations() {
        let factory = LockFactory::new();
        for &id in AlgorithmId::all() {
            let n = if id == AlgorithmId::Peterson { 2 } else { 3 };
            let lock = factory.build(id, n);
            assert_eq!(lock.algorithm_name(), id.name(), "{id:?}");
            assert!(lock.capacity() >= 2);
        }
    }

    #[test]
    fn every_id_has_exactly_one_table_row_in_enum_order() {
        assert_eq!(ALGORITHMS.len(), AlgorithmId::all().len());
        for (i, &id) in AlgorithmId::all().iter().enumerate() {
            assert_eq!(
                ALGORITHMS.iter().filter(|e| e.id == id).count(),
                1,
                "{id:?} must appear exactly once in the registry table"
            );
            // entry() indexes by discriminant, so the table, the enum and
            // the `all()` list must share one order.
            assert_eq!(ALGORITHMS[i].id, id, "table row {i} out of enum order");
            assert_eq!(id as usize, i, "all() out of discriminant order");
        }
        let debugged = format!("{:?}", AlgorithmId::Bakery.entry());
        assert!(debugged.contains("bakery"));
    }

    #[test]
    fn peterson_is_restricted_to_two() {
        assert!(AlgorithmId::Peterson.supports(2));
        assert!(!AlgorithmId::Peterson.supports(3));
        assert!(AlgorithmId::Bakery.supports(7));
    }

    #[test]
    fn all_algorithms_excludes_unsupported() {
        let factory = LockFactory::new();
        let at_three = all_algorithms(3, &factory);
        assert!(at_three.iter().all(|(id, _)| *id != AlgorithmId::Peterson));
        let at_two = all_algorithms(2, &factory);
        assert!(at_two.iter().any(|(id, _)| *id == AlgorithmId::Peterson));
        assert_eq!(at_two.len(), AlgorithmId::all().len());
    }

    #[test]
    fn classification_flags() {
        assert!(AlgorithmId::BakeryPlusPlus.is_true_mutex());
        assert!(!AlgorithmId::Tas.is_true_mutex());
        assert!(AlgorithmId::Bakery.is_fcfs());
        assert!(!AlgorithmId::Filter.is_fcfs());
        assert!(AlgorithmId::BakeryPlusPlus.is_bounded());
        assert!(!AlgorithmId::Bakery.is_bounded());
        // The tree composite: true mutex (pure reads/writes), bounded by
        // construction, but only per-node FCFS — not globally.
        assert!(AlgorithmId::TreeBakery.is_true_mutex());
        assert!(AlgorithmId::TreeBakery.is_bounded());
        assert!(!AlgorithmId::TreeBakery.is_fcfs());
        // The adaptive lock: bounded planes, but the handoff control words
        // are RMW (not "true" in the paper's sense) and its fairness shape
        // changes at the migration (no global FCFS claim).
        assert!(!AlgorithmId::AdaptiveBakery.is_true_mutex());
        assert!(AlgorithmId::AdaptiveBakery.is_bounded());
        assert!(!AlgorithmId::AdaptiveBakery.is_fcfs());
    }

    #[test]
    fn tree_bakery_builds_at_large_n_with_fixed_node_bound() {
        let factory = LockFactory::new().with_bound(9_999);
        let lock = factory.build(AlgorithmId::TreeBakery, 300);
        assert_eq!(lock.capacity(), 300);
        assert_eq!(
            lock.register_bound(),
            Some(bakery_core::DEFAULT_TREE_ARITY as u64 + 1),
            "the factory bound must not override the per-node M = K + 1"
        );
        let slot = lock.register().unwrap();
        drop(lock.lock(&slot));
        assert_eq!(lock.stats().cs_entries(), 1);
        // Scan mode reaches every node: padded trees have no packed plane.
        let padded = LockFactory::new()
            .with_scan_mode(ScanMode::Padded)
            .build(AlgorithmId::TreeBakery, 16);
        let slot = padded.register().unwrap();
        drop(padded.lock(&slot));
        assert_eq!(padded.stats().fast_path_hits(), 0);
    }

    #[test]
    fn adaptive_bakery_builds_and_enters() {
        let factory = LockFactory::new();
        let lock = factory.build(AlgorithmId::AdaptiveBakery, 16);
        assert_eq!(lock.capacity(), 16);
        let slot = lock.register().unwrap();
        for _ in 0..3 {
            drop(lock.lock(&slot));
        }
        assert_eq!(lock.stats().cs_entries(), 3);
        // Padded mode reaches both planes (no packed fast path anywhere).
        let padded = LockFactory::new()
            .with_scan_mode(ScanMode::Padded)
            .build(AlgorithmId::AdaptiveBakery, 8);
        let slot = padded.register().unwrap();
        drop(padded.lock(&slot));
        assert_eq!(padded.stats().fast_path_hits(), 0);
    }

    #[test]
    fn factory_bound_applies_to_bakery_pp() {
        let factory = LockFactory::new().with_bound(42);
        let lock = factory.build(AlgorithmId::BakeryPlusPlus, 3);
        assert_eq!(lock.register_bound(), Some(42));
        let classic = factory.build(AlgorithmId::Bakery, 3);
        assert_eq!(classic.register_bound(), Some(u64::MAX));
        let bounded = factory
            .with_bounded_classic(true)
            .build(AlgorithmId::Bakery, 3);
        assert_eq!(bounded.register_bound(), Some(42));
    }

    #[test]
    fn factory_scan_mode_applies_to_bakery_family() {
        let padded = LockFactory::new().with_scan_mode(ScanMode::Padded);
        for id in [AlgorithmId::Bakery, AlgorithmId::BakeryPlusPlus] {
            let lock = padded.build(id, 2);
            let slot = lock.register().unwrap();
            drop(lock.lock(&slot));
            assert_eq!(lock.stats().fast_path_hits(), 0, "{id}: padded has no fast path");
        }
        let packed = LockFactory::new();
        for id in [AlgorithmId::Bakery, AlgorithmId::BakeryPlusPlus] {
            let lock = packed.build(id, 2);
            let slot = lock.register().unwrap();
            drop(lock.lock(&slot));
            assert_eq!(lock.stats().fast_path_hits(), 1, "{id}: uncontended fast path");
        }
    }

    #[test]
    fn every_algorithm_enters_a_critical_section() {
        let factory = LockFactory::new();
        for (id, lock) in all_algorithms(2, &factory) {
            let slot = lock.register().unwrap();
            for _ in 0..3 {
                let _g = lock.lock(&slot);
            }
            assert_eq!(lock.stats().cs_entries(), 3, "{id}");
        }
    }

    #[test]
    fn every_algorithm_try_locks_or_fails_cleanly() {
        // try_acquire is part of the unified trait: an uncontended try_lock
        // either succeeds (locks with a real implementation) or fails
        // conservatively — and a subsequent blocking lock must still work.
        let factory = LockFactory::new();
        for (id, lock) in all_algorithms(2, &factory) {
            let slot = lock.register().unwrap();
            let tried = lock.try_lock(&slot).is_some();
            drop(lock.lock(&slot));
            assert_eq!(
                lock.stats().cs_entries(),
                1 + u64::from(tried),
                "{id}: try_lock then lock"
            );
        }
        // The headline locks all implement the real thing.
        for id in [
            AlgorithmId::Bakery,
            AlgorithmId::BakeryPlusPlus,
            AlgorithmId::TreeBakery,
            AlgorithmId::AdaptiveBakery,
            AlgorithmId::TicketLock,
            AlgorithmId::Tas,
            AlgorithmId::Ttas,
        ] {
            let lock = factory.build(id, 2);
            let slot = lock.register().unwrap();
            assert!(lock.try_lock(&slot).is_some(), "{id}: uncontended try");
        }
    }
}
