//! Dijkstra's 1965 mutual exclusion algorithm.
//!
//! The first solution to the mutual exclusion problem (the paper's reference
//! [3]) and the system model both Bakery and Bakery++ inherit.  It guarantees
//! mutual exclusion and deadlock freedom but **not** first-come-first-served
//! order or starvation freedom, and every process writes the shared variable
//! `k` — two of the properties Lamport's Bakery was designed to add.  Having
//! it in the suite lets the fairness experiment (**E8**) show *why* FCFS
//! matters, not just that Bakery provides it.

use std::sync::Arc;

use bakery_core::slots::SlotAllocator;
use bakery_core::sync::{AtomicBool, AtomicUsize, Ordering};
use bakery_core::wait::{WaitHandle, WaitToken};
use bakery_core::{LockStats, RawMutexAlgorithm};
use crossbeam::utils::CachePadded;

use crate::lock_accessors;

/// Dijkstra's 1965 N-process mutual exclusion lock.
///
/// ```
/// use bakery_baselines::DijkstraLock;
/// use bakery_core::RawMutexAlgorithm;
///
/// let lock = DijkstraLock::new(3);
/// let slot = lock.register().unwrap();
/// let _guard = lock.lock(&slot);
/// ```
#[derive(Debug)]
pub struct DijkstraLock {
    /// `b[i]` — true while process `i` is outside the entry protocol.
    b: Box<[CachePadded<AtomicBool>]>,
    /// `c[i]` — true while process `i` is not in the "second phase".
    c: Box<[CachePadded<AtomicBool>]>,
    /// `k` — the process currently presumed to have priority (multi-writer).
    k: CachePadded<AtomicUsize>,
    slots: Arc<SlotAllocator>,
    stats: LockStats,
    waits: WaitHandle,
}

impl DijkstraLock {
    /// Creates a Dijkstra lock for `n` processes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a lock needs at least one process slot");
        Self {
            b: (0..n)
                .map(|_| CachePadded::new(AtomicBool::new(true)))
                .collect(),
            c: (0..n)
                .map(|_| CachePadded::new(AtomicBool::new(true)))
                .collect(),
            k: CachePadded::new(AtomicUsize::new(0)),
            slots: SlotAllocator::new(n),
            stats: LockStats::new(),
            waits: WaitHandle::default_handle(),
        }
    }

    /// The process id currently stored in the shared priority variable `k`.
    #[must_use]
    pub fn priority_holder(&self) -> usize {
        self.k.load(Ordering::SeqCst) // mem: baseline-seqcst
    }
}

impl RawMutexAlgorithm for DijkstraLock {
    fn capacity(&self) -> usize {
        self.b.len()
    }

    fn acquire(&self, pid: usize) {
        let n = self.capacity();
        assert!(pid < n, "pid {pid} out of range");
        // The whole two-phase retry loop is one wait episode: both phases
        // contend for the same shared variable `k`, so the token (and its
        // escalation towards parking) carries across phase switches.
        let mut token = WaitToken::new();
        let mut waits = 0u64;

        self.b[pid].store(false, Ordering::SeqCst); // mem: baseline-seqcst
        loop {
            if self.k.load(Ordering::SeqCst) != pid { // mem: baseline-seqcst
                // First phase: try to claim priority once its current holder
                // is no longer interested.
                self.c[pid].store(true, Ordering::SeqCst); // mem: baseline-seqcst
                let holder = self.k.load(Ordering::SeqCst); // mem: baseline-seqcst
                if self.b[holder].load(Ordering::SeqCst) { // mem: baseline-seqcst
                    self.k.store(pid, Ordering::SeqCst); // mem: baseline-seqcst
                }
                waits += 1;
                self.waits.wait(self.waits.guard(), &mut token, &mut || {
                    self.k.load(Ordering::SeqCst) != pid // mem: baseline-seqcst
                });
            } else {
                // Second phase: announce and verify we are alone in it.
                self.c[pid].store(false, Ordering::SeqCst); // mem: baseline-seqcst
                let alone = (0..n).all(|j| j == pid || self.c[j].load(Ordering::SeqCst)); // mem: baseline-seqcst
                if alone {
                    break;
                }
                waits += 1;
                self.waits.wait(self.waits.guard(), &mut token, &mut || {
                    !(0..n).all(|j| j == pid || self.c[j].load(Ordering::SeqCst)) // mem: baseline-seqcst
                });
            }
        }
        self.stats.record_doorway_waits(waits);
    }

    fn release(&self, pid: usize) {
        self.c[pid].store(true, Ordering::SeqCst); // mem: baseline-seqcst
        self.b[pid].store(true, Ordering::SeqCst); // mem: baseline-seqcst
        self.waits.notify(self.waits.guard());
    }

    fn algorithm_name(&self) -> &'static str {
        "dijkstra"
    }

    fn shared_word_count(&self) -> usize {
        // b[0..N], c[0..N] and the shared k.
        2 * self.b.len() + 1
    }
    lock_accessors!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::assert_mutual_exclusion;
    use bakery_core::RawMutexAlgorithm;

    #[test]
    fn single_process_reenters() {
        let lock = DijkstraLock::new(1);
        let slot = lock.register().unwrap();
        for _ in 0..10 {
            let _g = lock.lock(&slot);
        }
        assert_eq!(lock.stats().cs_entries(), 10);
    }

    #[test]
    fn holder_claims_priority_variable() {
        let lock = DijkstraLock::new(3);
        let slot = lock.register_exact(1).unwrap();
        let g = lock.lock(&slot);
        assert_eq!(lock.priority_holder(), 1);
        drop(g);
    }

    #[test]
    fn metadata() {
        let lock = DijkstraLock::new(4);
        assert_eq!(lock.capacity(), 4);
        assert_eq!(lock.shared_word_count(), 9);
        assert_eq!(lock.algorithm_name(), "dijkstra");
        assert_eq!(lock.register_bound(), None);
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_capacity_rejected() {
        let _ = DijkstraLock::new(0);
    }

    #[test]
    fn mutual_exclusion_four_threads() {
        let total = assert_mutual_exclusion(std::sync::Arc::new(DijkstraLock::new(4)), 4, 500);
        assert_eq!(total, 2000);
    }
}
