//! Taubenfeld's Black-White Bakery algorithm.
//!
//! The Black-White Bakery is the best-known representative of the paper's
//! "approach 2" to bounding the Bakery algorithm: it **adds a shared
//! variable** — a single colour bit written by every process leaving its
//! critical section — and takes ticket numbers only relative to processes of
//! the same colour.  Because at most `N` processes of one colour can be in the
//! bakery at once, ticket values never exceed `N`, so the registers are
//! bounded without any overflow check.
//!
//! The cost is exactly what the Bakery++ paper objects to: the colour bit is
//! a multi-writer shared variable (every process writes it), so the algorithm
//! gives up the "no process writes into another process's memory" property of
//! the original Bakery.  Experiment **E6** reports the shared-word counts and
//! the maximum observed ticket values of both algorithms side by side.

use std::sync::Arc;

use bakery_core::slots::SlotAllocator;
use bakery_core::sync::{AtomicBool, AtomicU64, Ordering};
use bakery_core::ticket::{Ticket, TicketOrder};
use bakery_core::wait::{WaitHandle, WaitToken};
use bakery_core::{LockStats, RawMutexAlgorithm};
use crossbeam::utils::CachePadded;

use crate::lock_accessors;

/// Taubenfeld's Black-White Bakery lock for `N` processes.
///
/// Ticket values are bounded by `N` by construction.
///
/// ```
/// use bakery_baselines::BlackWhiteBakeryLock;
/// use bakery_core::RawMutexAlgorithm;
///
/// let lock = BlackWhiteBakeryLock::new(3);
/// let slot = lock.register().unwrap();
/// let _guard = lock.lock(&slot);
/// ```
#[derive(Debug)]
pub struct BlackWhiteBakeryLock {
    /// The shared colour bit — written by every process (multi-writer).
    color: CachePadded<AtomicBool>,
    choosing: Box<[CachePadded<AtomicBool>]>,
    /// Each process's colour, taken from `color` in the doorway.
    mycolor: Box<[CachePadded<AtomicBool>]>,
    number: Box<[CachePadded<AtomicU64>]>,
    slots: Arc<SlotAllocator>,
    stats: LockStats,
    waits: WaitHandle,
}

impl BlackWhiteBakeryLock {
    /// Creates a Black-White Bakery lock for `n` processes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a lock needs at least one process slot");
        Self {
            color: CachePadded::new(AtomicBool::new(false)),
            choosing: (0..n)
                .map(|_| CachePadded::new(AtomicBool::new(false)))
                .collect(),
            mycolor: (0..n)
                .map(|_| CachePadded::new(AtomicBool::new(false)))
                .collect(),
            number: (0..n)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            slots: SlotAllocator::new(n),
            stats: LockStats::new(),
            waits: WaitHandle::default_handle(),
        }
    }

    /// The current shared colour (false = black, true = white).
    #[must_use]
    pub fn shared_color(&self) -> bool {
        self.color.load(Ordering::SeqCst) // mem: baseline-seqcst
    }

    /// The ticket number currently held by `pid` (0 when idle).
    #[must_use]
    pub fn number_of(&self, pid: usize) -> u64 {
        self.number[pid].load(Ordering::SeqCst) // mem: baseline-seqcst
    }

    fn color_of(&self, j: usize) -> bool {
        self.mycolor[j].load(Ordering::SeqCst) // mem: baseline-seqcst
    }
}

impl RawMutexAlgorithm for BlackWhiteBakeryLock {
    fn capacity(&self) -> usize {
        self.number.len()
    }

    fn acquire(&self, pid: usize) {
        let n = self.capacity();
        assert!(pid < n, "pid {pid} out of range");
        let mut waits = 0u64;

        // Doorway: take the shared colour, then a ticket one larger than the
        // maximum among same-coloured processes.
        self.choosing[pid].store(true, Ordering::SeqCst); // mem: baseline-seqcst
        let my_color = self.color.load(Ordering::SeqCst); // mem: baseline-seqcst
        self.mycolor[pid].store(my_color, Ordering::SeqCst); // mem: baseline-seqcst
        let same_color_numbers: Vec<u64> = (0..n)
            .filter(|&j| self.color_of(j) == my_color)
            .map(|j| self.number[j].load(Ordering::SeqCst)) // mem: baseline-seqcst
            .collect();
        let ticket = TicketOrder::maximum(&same_color_numbers) + 1;
        self.number[pid].store(ticket, Ordering::SeqCst); // mem: baseline-seqcst
        self.stats.record_ticket(ticket);
        self.choosing[pid].store(false, Ordering::SeqCst); // mem: baseline-seqcst

        // Scan.
        for j in 0..n {
            if j == pid {
                continue;
            }
            // Fresh token per watched contender; a second fresh one for the
            // ticket stage (the L2/L3 split of the episode policy).
            let mut token = WaitToken::new();
            while self.choosing[j].load(Ordering::SeqCst) { // mem: baseline-seqcst
                waits += 1;
                self.waits.wait(self.waits.choosing(j), &mut token, &mut || {
                    self.choosing[j].load(Ordering::SeqCst) // mem: baseline-seqcst
                });
            }
            let mut token = WaitToken::new();
            loop {
                let nj = self.number[j].load(Ordering::SeqCst); // mem: baseline-seqcst
                if nj == 0 {
                    break;
                }
                let cj = self.color_of(j);
                if cj == my_color {
                    // Same colour: ordinary Bakery priority check.
                    let me = Ticket::new(self.number[pid].load(Ordering::SeqCst), pid); // mem: baseline-seqcst
                    let other = Ticket::new(nj, j);
                    if !TicketOrder::must_wait_for(me, other) || cj != self.color_of(j) {
                        break;
                    }
                } else {
                    // Different colour: j goes first only while the shared
                    // colour still equals my colour.
                    if self.color.load(Ordering::SeqCst) != my_color || cj == self.color_of(pid) { // mem: baseline-seqcst
                        break;
                    }
                }
                waits += 1;
                self.waits.wait(self.waits.ticket(j), &mut token, &mut || {
                    self.number[j].load(Ordering::SeqCst) != 0 // mem: baseline-seqcst
                });
            }
        }
        self.stats.record_doorway_waits(waits);
    }

    fn release(&self, pid: usize) {
        // Flip the shared colour away from our own, then retire the ticket.
        let my_color = self.mycolor[pid].load(Ordering::SeqCst); // mem: baseline-seqcst
        self.color.store(!my_color, Ordering::SeqCst); // mem: baseline-seqcst
        self.number[pid].store(0, Ordering::SeqCst); // mem: baseline-seqcst
        // Wake scans parked on our ticket word (the colour flip also unblocks
        // different-colour waiters watching other tickets; their 1ms park
        // timeout bounds that window under the Park strategy).
        self.waits.notify(self.waits.ticket(pid));
    }

    fn algorithm_name(&self) -> &'static str {
        "black-white-bakery"
    }

    fn shared_word_count(&self) -> usize {
        // choosing[N] + mycolor[N] + number[N] + the shared colour bit.
        3 * self.number.len() + 1
    }

    fn register_bound(&self) -> Option<u64> {
        // Ticket values are bounded by the number of processes.
        Some(self.number.len() as u64)
    }
    lock_accessors!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::assert_mutual_exclusion;
    use bakery_core::RawMutexAlgorithm;

    #[test]
    fn single_process_reenters() {
        let lock = BlackWhiteBakeryLock::new(1);
        let slot = lock.register().unwrap();
        for _ in 0..10 {
            let _g = lock.lock(&slot);
        }
        assert_eq!(lock.stats().cs_entries(), 10);
    }

    #[test]
    fn colour_flips_on_every_release() {
        let lock = BlackWhiteBakeryLock::new(2);
        let slot = lock.register().unwrap();
        let before = lock.shared_color();
        drop(lock.lock(&slot));
        assert_ne!(lock.shared_color(), before);
        drop(lock.lock(&slot));
        assert_eq!(lock.shared_color(), before);
    }

    #[test]
    fn ticket_values_stay_bounded_by_n() {
        // The whole point of the colour bit: numbers never exceed N even
        // though the bakery never empties logically.
        let lock = BlackWhiteBakeryLock::new(2);
        let slot = lock.register().unwrap();
        for _ in 0..200 {
            let _g = lock.lock(&slot);
        }
        assert!(lock.stats().max_ticket() <= 2);
        assert_eq!(lock.register_bound(), Some(2));
    }

    #[test]
    fn metadata() {
        let lock = BlackWhiteBakeryLock::new(4);
        assert_eq!(lock.capacity(), 4);
        assert_eq!(lock.shared_word_count(), 13);
        assert_eq!(lock.algorithm_name(), "black-white-bakery");
    }

    #[test]
    fn mutual_exclusion_four_threads() {
        let lock = std::sync::Arc::new(BlackWhiteBakeryLock::new(4));
        let total = assert_mutual_exclusion(std::sync::Arc::clone(&lock), 4, 500);
        assert_eq!(total, 2000);
        assert!(
            lock.stats().max_ticket() <= 4,
            "black-white tickets must stay bounded by N, saw {}",
            lock.stats().max_ticket()
        );
    }
}
