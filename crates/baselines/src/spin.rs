//! Test-and-set (TAS) and test-and-test-and-set (TTAS) spin locks.
//!
//! Like the ticket lock these rely on atomic read-modify-write operations, so
//! the paper would not count them as true mutual exclusion algorithms; they
//! are the "hardware-assisted strawman" end of the comparison spectrum.  They
//! are deliberately unfair — a thread can barge in ahead of threads that have
//! been waiting far longer — which gives the fairness experiment (**E8**) its
//! worst-case baseline.

use std::sync::Arc;

use bakery_core::slots::SlotAllocator;
use bakery_core::sync::{AtomicBool, Ordering};
use bakery_core::wait::{WaitHandle, WaitToken};
use bakery_core::{LockStats, RawMutexAlgorithm};
use crossbeam::utils::CachePadded;

use crate::lock_accessors;

/// Plain test-and-set spin lock.
#[derive(Debug)]
pub struct TasLock {
    locked: CachePadded<AtomicBool>,
    slots: Arc<SlotAllocator>,
    stats: LockStats,
    waits: WaitHandle,
}

impl TasLock {
    /// Creates a TAS lock usable by up to `n` registered processes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            locked: CachePadded::new(AtomicBool::new(false)),
            slots: SlotAllocator::new(n),
            stats: LockStats::new(),
            waits: WaitHandle::default_handle(),
        }
    }

    /// True when some process currently holds the lock.
    #[must_use]
    pub fn is_locked(&self) -> bool {
        self.locked.load(Ordering::SeqCst) // mem: baseline-seqcst
    }
}

impl RawMutexAlgorithm for TasLock {
    fn capacity(&self) -> usize {
        self.slots.capacity()
    }

    fn acquire(&self, pid: usize) {
        assert!(pid < self.capacity(), "pid {pid} out of range");
        let mut token = WaitToken::new();
        let mut waits = 0u64;
        while self.locked.swap(true, Ordering::SeqCst) { // mem: baseline-seqcst
            waits += 1;
            self.waits.wait(self.waits.guard(), &mut token, &mut || {
                self.locked.load(Ordering::SeqCst) // mem: baseline-seqcst
            });
        }
        self.stats.record_doorway_waits(waits);
    }

    fn release(&self, _pid: usize) {
        self.locked.store(false, Ordering::SeqCst); // mem: baseline-seqcst
        self.waits.notify(self.waits.guard());
    }

    fn try_acquire(&self, pid: usize) -> bool {
        assert!(pid < self.capacity(), "pid {pid} out of range");
        !self.locked.swap(true, Ordering::SeqCst) // mem: baseline-seqcst
    }

    fn algorithm_name(&self) -> &'static str {
        "tas"
    }

    fn shared_word_count(&self) -> usize {
        1
    }
    lock_accessors!();
}

/// Test-and-test-and-set spin lock: spin on a plain load, swap only when the
/// lock looks free.  Same semantics as [`TasLock`], far less coherence
/// traffic under contention.
#[derive(Debug)]
pub struct TtasLock {
    locked: CachePadded<AtomicBool>,
    slots: Arc<SlotAllocator>,
    stats: LockStats,
    waits: WaitHandle,
}

impl TtasLock {
    /// Creates a TTAS lock usable by up to `n` registered processes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            locked: CachePadded::new(AtomicBool::new(false)),
            slots: SlotAllocator::new(n),
            stats: LockStats::new(),
            waits: WaitHandle::default_handle(),
        }
    }

    /// True when some process currently holds the lock.
    #[must_use]
    pub fn is_locked(&self) -> bool {
        self.locked.load(Ordering::SeqCst) // mem: baseline-seqcst
    }
}

impl RawMutexAlgorithm for TtasLock {
    fn capacity(&self) -> usize {
        self.slots.capacity()
    }

    fn acquire(&self, pid: usize) {
        assert!(pid < self.capacity(), "pid {pid} out of range");
        let mut token = WaitToken::new();
        let mut waits = 0u64;
        loop {
            // Spin on the cached value first.
            while self.locked.load(Ordering::SeqCst) { // mem: baseline-seqcst
                waits += 1;
                self.waits.wait(self.waits.guard(), &mut token, &mut || {
                    self.locked.load(Ordering::SeqCst) // mem: baseline-seqcst
                });
            }
            if !self.locked.swap(true, Ordering::SeqCst) { // mem: baseline-seqcst
                break;
            }
        }
        self.stats.record_doorway_waits(waits);
    }

    fn release(&self, _pid: usize) {
        self.locked.store(false, Ordering::SeqCst); // mem: baseline-seqcst
        self.waits.notify(self.waits.guard());
    }

    fn try_acquire(&self, pid: usize) -> bool {
        assert!(pid < self.capacity(), "pid {pid} out of range");
        // Test, then test-and-set: the cheap load filters the common
        // contended case before paying for the RMW.
        !self.locked.load(Ordering::SeqCst) && !self.locked.swap(true, Ordering::SeqCst) // mem: baseline-seqcst
    }

    fn algorithm_name(&self) -> &'static str {
        "ttas"
    }

    fn shared_word_count(&self) -> usize {
        1
    }
    lock_accessors!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::assert_mutual_exclusion;
    use bakery_core::RawMutexAlgorithm;

    #[test]
    fn tas_basic_cycle() {
        let lock = TasLock::new(2);
        let slot = lock.register().unwrap();
        assert!(!lock.is_locked());
        let g = lock.lock(&slot);
        assert!(lock.is_locked());
        drop(g);
        assert!(!lock.is_locked());
        assert_eq!(lock.algorithm_name(), "tas");
        assert_eq!(lock.shared_word_count(), 1);
    }

    #[test]
    fn ttas_basic_cycle() {
        let lock = TtasLock::new(2);
        let slot = lock.register().unwrap();
        assert!(!lock.is_locked());
        let g = lock.lock(&slot);
        assert!(lock.is_locked());
        drop(g);
        assert!(!lock.is_locked());
        assert_eq!(lock.algorithm_name(), "ttas");
    }

    #[test]
    fn tas_mutual_exclusion() {
        let total = assert_mutual_exclusion(std::sync::Arc::new(TasLock::new(4)), 4, 1000);
        assert_eq!(total, 4000);
    }

    #[test]
    fn ttas_mutual_exclusion() {
        let total = assert_mutual_exclusion(std::sync::Arc::new(TtasLock::new(4)), 4, 1000);
        assert_eq!(total, 4000);
    }
}
