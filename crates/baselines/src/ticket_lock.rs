//! A fetch-and-add ticket lock.
//!
//! The ticket lock is FIFO and compact (two shared words), but it is built on
//! an atomic read-modify-write instruction, so in the paper's terminology it
//! is *not* a true mutual exclusion algorithm — it assumes a lower-level
//! mutual exclusion mechanism (the processor's locked fetch-and-add).  It is
//! included as the "what you would use in practice if RMW is acceptable"
//! baseline for the throughput and fairness experiments (**E7**, **E8**).
//!
//! It also overflows in exactly the way the paper worries about: the ticket
//! counter increases forever.  Because both counters wrap consistently the
//! lock happens to stay correct on wrap-around as long as fewer than 2^64
//! acquisitions are in flight, but with a small simulated register width the
//! same hazard as classic Bakery appears; the harness measures that in **E9**.

use std::sync::Arc;

use bakery_core::slots::SlotAllocator;
use bakery_core::sync::{AtomicU64, Ordering};
use bakery_core::wait::{WaitHandle, WaitToken};
use bakery_core::{LockStats, RawMutexAlgorithm};
use crossbeam::utils::CachePadded;

use crate::lock_accessors;

/// FIFO ticket lock based on fetch-and-add.
///
/// ```
/// use bakery_baselines::TicketLock;
/// use bakery_core::RawMutexAlgorithm;
///
/// let lock = TicketLock::new(4);
/// let slot = lock.register().unwrap();
/// let _guard = lock.lock(&slot);
/// ```
#[derive(Debug)]
pub struct TicketLock {
    next_ticket: CachePadded<AtomicU64>,
    now_serving: CachePadded<AtomicU64>,
    slots: Arc<SlotAllocator>,
    stats: LockStats,
    waits: WaitHandle,
}

impl TicketLock {
    /// Creates a ticket lock usable by up to `n` registered processes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            next_ticket: CachePadded::new(AtomicU64::new(0)),
            now_serving: CachePadded::new(AtomicU64::new(0)),
            slots: SlotAllocator::new(n),
            stats: LockStats::new(),
            waits: WaitHandle::default_handle(),
        }
    }

    /// The ticket that will be handed to the next arrival.
    #[must_use]
    pub fn next_ticket(&self) -> u64 {
        self.next_ticket.load(Ordering::SeqCst) // mem: baseline-seqcst
    }

    /// The ticket currently being served.
    #[must_use]
    pub fn now_serving(&self) -> u64 {
        self.now_serving.load(Ordering::SeqCst) // mem: baseline-seqcst
    }
}

impl RawMutexAlgorithm for TicketLock {
    fn capacity(&self) -> usize {
        self.slots.capacity()
    }

    fn acquire(&self, pid: usize) {
        assert!(pid < self.capacity(), "pid {pid} out of range");
        let ticket = self.next_ticket.fetch_add(1, Ordering::SeqCst); // mem: baseline-seqcst
        self.stats.record_ticket(ticket);
        // FIFO handoff: each waiter parks on its own ticket's site, so a
        // release wakes exactly the next holder rather than the whole queue.
        let site = self.waits.ticket(ticket as usize);
        let mut token = WaitToken::new();
        let mut waits = 0u64;
        while self.now_serving.load(Ordering::SeqCst) != ticket { // mem: baseline-seqcst
            waits += 1;
            self.waits.wait(site, &mut token, &mut || {
                self.now_serving.load(Ordering::SeqCst) != ticket // mem: baseline-seqcst
            });
        }
        self.stats.record_doorway_waits(waits);
    }

    fn release(&self, _pid: usize) {
        let next = self.now_serving.fetch_add(1, Ordering::SeqCst) + 1; // mem: baseline-seqcst
        self.waits.notify(self.waits.ticket(next as usize));
    }

    fn try_acquire(&self, pid: usize) -> bool {
        assert!(pid < self.capacity(), "pid {pid} out of range");
        // Only draw a ticket when it would be served immediately; the CAS
        // closes the window against a concurrent arrival.
        let ticket = self.next_ticket.load(Ordering::SeqCst); // mem: baseline-seqcst
        if self.now_serving.load(Ordering::SeqCst) != ticket { // mem: baseline-seqcst
            return false;
        }
        let won = self
            .next_ticket
            .compare_exchange(ticket, ticket + 1, Ordering::SeqCst, Ordering::SeqCst) // mem: baseline-seqcst
            .is_ok();
        if won {
            self.stats.record_ticket(ticket);
        }
        won
    }

    fn algorithm_name(&self) -> &'static str {
        "ticket-lock"
    }

    fn shared_word_count(&self) -> usize {
        2
    }
    lock_accessors!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::assert_mutual_exclusion;
    use bakery_core::RawMutexAlgorithm;

    #[test]
    fn single_process_reenters() {
        let lock = TicketLock::new(1);
        let slot = lock.register().unwrap();
        for _ in 0..10 {
            let _g = lock.lock(&slot);
        }
        assert_eq!(lock.stats().cs_entries(), 10);
        assert_eq!(lock.next_ticket(), 10);
        assert_eq!(lock.now_serving(), 10);
    }

    #[test]
    fn tickets_grow_monotonically_forever() {
        // The behaviour the paper warns about: the counter never resets.
        let lock = TicketLock::new(2);
        let slot = lock.register().unwrap();
        for i in 0..100 {
            let _g = lock.lock(&slot);
            assert_eq!(lock.next_ticket(), i + 1);
        }
        assert_eq!(lock.stats().max_ticket(), 99);
    }

    #[test]
    fn metadata() {
        let lock = TicketLock::new(8);
        assert_eq!(lock.capacity(), 8);
        assert_eq!(lock.shared_word_count(), 2);
        assert_eq!(lock.algorithm_name(), "ticket-lock");
    }

    #[test]
    fn mutual_exclusion_four_threads() {
        let total = assert_mutual_exclusion(std::sync::Arc::new(TicketLock::new(4)), 4, 1000);
        assert_eq!(total, 4000);
    }
}
