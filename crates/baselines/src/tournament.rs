//! A tournament tree of two-process Peterson locks.
//!
//! `N` processes are placed at the leaves of a complete binary tree whose
//! internal nodes are independent two-process Peterson instances.  A process
//! acquires every node on the path from its leaf to the root (playing side 0
//! or 1 depending on which child it arrives from) and releases them in the
//! opposite order.  Entry takes `O(log N)` node acquisitions regardless of
//! contention — the classic trade-off against Bakery's `O(N)` scan, measured
//! in experiments **E6**/**E7**.

use std::sync::Arc;

use bakery_core::slots::SlotAllocator;
use bakery_core::sync::{AtomicBool, AtomicUsize, Ordering};
use bakery_core::wait::{WaitHandle, WaitToken};
use bakery_core::{LockStats, RawMutexAlgorithm};
use crossbeam::utils::CachePadded;

use crate::lock_accessors;

/// One internal node: an embedded two-process Peterson lock.
#[derive(Debug)]
struct Node {
    flag: [CachePadded<AtomicBool>; 2],
    turn: CachePadded<AtomicUsize>,
}

impl Node {
    fn new() -> Self {
        Self {
            flag: [
                CachePadded::new(AtomicBool::new(false)),
                CachePadded::new(AtomicBool::new(false)),
            ],
            turn: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    /// Acquires this node, parking (strategy permitting) on the node's own
    /// wait site `idx` so a release wakes only the sibling contender.
    fn acquire(&self, side: usize, idx: usize, waits_plane: &WaitHandle, stats: &LockStats) {
        let other = 1 - side;
        self.flag[side].store(true, Ordering::SeqCst); // mem: baseline-seqcst
        self.turn.store(other, Ordering::SeqCst); // mem: baseline-seqcst
        // Fresh token per node: each tree level is its own wait episode.
        let mut token = WaitToken::new();
        let mut waits = 0u64;
        while self.flag[other].load(Ordering::SeqCst) && self.turn.load(Ordering::SeqCst) == other // mem: baseline-seqcst
        {
            waits += 1;
            waits_plane.wait(waits_plane.ticket(idx), &mut token, &mut || {
                self.flag[other].load(Ordering::SeqCst) // mem: baseline-seqcst
                    && self.turn.load(Ordering::SeqCst) == other // mem: baseline-seqcst
            });
        }
        stats.record_doorway_waits(waits);
    }

    fn release(&self, side: usize, idx: usize, waits_plane: &WaitHandle) {
        self.flag[side].store(false, Ordering::SeqCst); // mem: baseline-seqcst
        waits_plane.notify(waits_plane.ticket(idx));
    }
}

/// Tournament-tree lock for `N` processes (N rounded up to a power of two
/// internally).
///
/// ```
/// use bakery_baselines::TournamentLock;
/// use bakery_core::RawMutexAlgorithm;
///
/// let lock = TournamentLock::new(6);
/// let slot = lock.register().unwrap();
/// let _guard = lock.lock(&slot);
/// ```
#[derive(Debug)]
pub struct TournamentLock {
    /// Heap-layout tree: node 1 is the root, node `k` has children `2k`, `2k+1`.
    nodes: Box<[Node]>,
    /// Number of leaves (the padded, power-of-two capacity).
    leaves: usize,
    capacity: usize,
    slots: Arc<SlotAllocator>,
    stats: LockStats,
    waits: WaitHandle,
}

impl TournamentLock {
    /// Creates a tournament lock for `n` processes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a lock needs at least one process slot");
        let leaves = n.next_power_of_two().max(2);
        // Internal nodes occupy indices 1..leaves in a heap layout.
        let nodes = (0..leaves).map(|_| Node::new()).collect();
        Self {
            nodes,
            leaves,
            capacity: n,
            slots: SlotAllocator::new(n),
            stats: LockStats::new(),
            waits: WaitHandle::default_handle(),
        }
    }

    /// Depth of the tree (number of node acquisitions per lock operation).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.leaves.trailing_zeros() as usize
    }

    /// The path of (node index, side) pairs from the leaf of `pid` to the root.
    fn path(&self, pid: usize) -> Vec<(usize, usize)> {
        let mut path = Vec::with_capacity(self.depth());
        let mut node = self.leaves + pid; // virtual leaf index
        while node > 1 {
            let parent = node / 2;
            let side = node % 2;
            path.push((parent, side));
            node = parent;
        }
        path
    }
}

impl RawMutexAlgorithm for TournamentLock {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn acquire(&self, pid: usize) {
        assert!(pid < self.capacity, "pid {pid} out of range");
        for (node, side) in self.path(pid) {
            self.nodes[node].acquire(side, node, &self.waits, &self.stats);
        }
    }

    fn release(&self, pid: usize) {
        // Release from the root back down to the leaf (reverse acquisition
        // order) so a descendant node is never exposed while an ancestor is
        // still held.
        for (node, side) in self.path(pid).into_iter().rev() {
            self.nodes[node].release(side, node, &self.waits);
        }
    }

    fn algorithm_name(&self) -> &'static str {
        "peterson-tournament"
    }

    fn shared_word_count(&self) -> usize {
        // Each internal node holds two flags and a turn word.
        (self.leaves - 1) * 3
    }
    lock_accessors!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::assert_mutual_exclusion;
    use bakery_core::RawMutexAlgorithm;

    #[test]
    fn single_process_reenters() {
        let lock = TournamentLock::new(1);
        let slot = lock.register().unwrap();
        for _ in 0..10 {
            let _g = lock.lock(&slot);
        }
        assert_eq!(lock.stats().cs_entries(), 10);
    }

    #[test]
    fn capacity_and_depth() {
        let lock = TournamentLock::new(6);
        assert_eq!(lock.capacity(), 6);
        assert_eq!(lock.depth(), 3, "6 leaves round up to 8 = 2^3");
        let lock = TournamentLock::new(2);
        assert_eq!(lock.depth(), 1);
        assert_eq!(lock.shared_word_count(), 3);
    }

    #[test]
    fn paths_are_disjoint_at_leaf_level() {
        let lock = TournamentLock::new(4);
        let p0 = lock.path(0);
        let p1 = lock.path(1);
        // Sibling leaves share their parent node but arrive on opposite sides.
        assert_eq!(p0[0].0, p1[0].0);
        assert_ne!(p0[0].1, p1[0].1);
        // All paths end at the root (node 1).
        assert_eq!(p0.last().unwrap().0, 1);
        assert_eq!(lock.path(3).last().unwrap().0, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_pid_panics() {
        let lock = TournamentLock::new(3);
        lock.acquire(3);
    }

    #[test]
    fn mutual_exclusion_five_threads() {
        let total = assert_mutual_exclusion(std::sync::Arc::new(TournamentLock::new(5)), 5, 400);
        assert_eq!(total, 2000);
    }
}
