//! Peterson's two-process mutual exclusion algorithm.
//!
//! The paper (Section 4) contrasts Bakery++ with Peterson's algorithm on one
//! structural point: Peterson uses a variable `turn` that **every** process
//! writes, whereas in Bakery/Bakery++ each process writes only its own cells.
//! This lock exists so that difference — and the resulting shared-word counts
//! and throughput — can be measured (experiments **E6**/**E7**).

use std::sync::Arc;

use bakery_core::slots::SlotAllocator;
use bakery_core::sync::{AtomicBool, AtomicUsize, Ordering};
use bakery_core::wait::{WaitHandle, WaitToken};
use bakery_core::{LockStats, RawMutexAlgorithm};
use crossbeam::utils::CachePadded;

use crate::lock_accessors;

/// Peterson's algorithm for exactly two processes.
///
/// ```
/// use bakery_baselines::PetersonLock;
/// use bakery_core::RawMutexAlgorithm;
///
/// let lock = PetersonLock::new();
/// let slot = lock.register().unwrap();
/// let _guard = lock.lock(&slot);
/// ```
#[derive(Debug)]
pub struct PetersonLock {
    flag: [CachePadded<AtomicBool>; 2],
    /// Written by both processes — the multi-writer variable the paper calls out.
    turn: CachePadded<AtomicUsize>,
    slots: Arc<SlotAllocator>,
    stats: LockStats,
    waits: WaitHandle,
}

impl PetersonLock {
    /// Creates a two-process Peterson lock.
    #[must_use]
    pub fn new() -> Self {
        Self {
            flag: [
                CachePadded::new(AtomicBool::new(false)),
                CachePadded::new(AtomicBool::new(false)),
            ],
            turn: CachePadded::new(AtomicUsize::new(0)),
            slots: SlotAllocator::new(2),
            stats: LockStats::new(),
            waits: WaitHandle::default_handle(),
        }
    }

    /// True when process `pid` currently signals interest.
    #[must_use]
    pub fn is_interested(&self, pid: usize) -> bool {
        self.flag[pid].load(Ordering::SeqCst) // mem: baseline-seqcst
    }
}

impl Default for PetersonLock {
    fn default() -> Self {
        Self::new()
    }
}

impl RawMutexAlgorithm for PetersonLock {
    fn capacity(&self) -> usize {
        2
    }

    fn acquire(&self, pid: usize) {
        assert!(pid < 2, "Peterson's algorithm supports exactly two processes");
        let other = 1 - pid;
        self.flag[pid].store(true, Ordering::SeqCst); // mem: baseline-seqcst
        self.turn.store(other, Ordering::SeqCst); // mem: baseline-seqcst
        let mut token = WaitToken::new();
        let mut waits = 0u64;
        while self.flag[other].load(Ordering::SeqCst) && self.turn.load(Ordering::SeqCst) == other // mem: baseline-seqcst
        {
            waits += 1;
            self.waits.wait(self.waits.guard(), &mut token, &mut || {
                self.flag[other].load(Ordering::SeqCst) // mem: baseline-seqcst
                    && self.turn.load(Ordering::SeqCst) == other // mem: baseline-seqcst
            });
        }
        self.stats.record_doorway_waits(waits);
    }

    fn release(&self, pid: usize) {
        self.flag[pid].store(false, Ordering::SeqCst); // mem: baseline-seqcst
        self.waits.notify(self.waits.guard());
    }

    fn algorithm_name(&self) -> &'static str {
        "peterson"
    }

    fn shared_word_count(&self) -> usize {
        // flag[0], flag[1] and the shared multi-writer turn.
        3
    }
    lock_accessors!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::assert_mutual_exclusion;
    use bakery_core::RawMutexAlgorithm;

    #[test]
    fn single_process_reenters() {
        let lock = PetersonLock::new();
        let slot = lock.register().unwrap();
        for _ in 0..20 {
            let _g = lock.lock(&slot);
        }
        assert_eq!(lock.stats().cs_entries(), 20);
    }

    #[test]
    fn capacity_is_two() {
        let lock = PetersonLock::new();
        assert_eq!(lock.capacity(), 2);
        assert_eq!(lock.shared_word_count(), 3);
        assert_eq!(lock.algorithm_name(), "peterson");
        assert_eq!(lock.register_bound(), None);
    }

    #[test]
    fn third_registration_fails() {
        let lock = PetersonLock::new();
        let _a = lock.register().unwrap();
        let _b = lock.register().unwrap();
        assert!(lock.register().is_err());
    }

    #[test]
    #[should_panic(expected = "exactly two processes")]
    fn out_of_range_pid_panics() {
        let lock = PetersonLock::new();
        lock.acquire(2);
    }

    #[test]
    fn interest_flag_tracks_acquire_release() {
        let lock = PetersonLock::new();
        let slot = lock.register().unwrap();
        assert!(!lock.is_interested(0));
        let g = lock.lock(&slot);
        assert!(lock.is_interested(0));
        drop(g);
        assert!(!lock.is_interested(0));
    }

    #[test]
    fn mutual_exclusion_two_threads() {
        let total = assert_mutual_exclusion(std::sync::Arc::new(PetersonLock::new()), 2, 2000);
        assert_eq!(total, 4000);
    }
}
