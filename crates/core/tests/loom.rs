//! loom model-checking of the real atomics-based locks.
//!
//! These tests only compile and run under `RUSTFLAGS="--cfg loom"`:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p bakery-core --test loom --release
//! ```
//!
//! They complement the `bakery-mc` explicit-state checker: `bakery-mc`
//! verifies the *abstract algorithm* under the paper's register model, while
//! loom verifies this crate's *implementation* (SeqCst atomics) under the C11
//! memory model for two threads.
#![cfg(loom)]

use std::sync::Arc;

use bakery_core::{BakeryLock, BakeryPlusPlusLock, NProcessMutex, RawNProcessLock};
use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::thread;

fn check_two_thread_mutex<L, F>(make: F)
where
    L: RawNProcessLock + 'static,
    F: Fn() -> L + Sync + Send + 'static,
{
    loom::model(move || {
        let lock = Arc::new(make());
        let in_cs = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for pid in 0..2 {
            let lock = Arc::clone(&lock);
            let in_cs = Arc::clone(&in_cs);
            handles.push(thread::spawn(move || {
                lock.acquire(pid);
                assert_eq!(in_cs.fetch_add(1, Ordering::SeqCst), 0);
                in_cs.fetch_sub(1, Ordering::SeqCst);
                lock.release(pid);
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
    });
}

#[test]
fn loom_bakery_two_threads() {
    check_two_thread_mutex(|| BakeryLock::new(2));
}

#[test]
fn loom_bakery_pp_two_threads() {
    check_two_thread_mutex(|| BakeryPlusPlusLock::with_bound(2, 8));
}

#[test]
fn loom_bakery_padded_baseline_two_threads() {
    use bakery_core::{registers::OverflowPolicy, ScanMode};
    check_two_thread_mutex(|| {
        BakeryLock::with_config(2, u64::MAX, OverflowPolicy::Wrap, ScanMode::Padded)
    });
}

/// Smoke test of the relaxed-ordering fast path: with both threads racing,
/// the packed-snapshot emptiness check must never let two processes into the
/// critical section together, and every acquisition is either a fast-path hit
/// or a completed wait-loop pass.
#[test]
fn loom_packed_fast_path_preserves_mutual_exclusion() {
    loom::model(|| {
        let lock = Arc::new(BakeryPlusPlusLock::with_bound(2, 255)); // u8 lanes
        let in_cs = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for pid in 0..2 {
            let lock = Arc::clone(&lock);
            let in_cs = Arc::clone(&in_cs);
            handles.push(thread::spawn(move || {
                lock.acquire(pid);
                assert_eq!(in_cs.fetch_add(1, Ordering::SeqCst), 0);
                in_cs.fetch_sub(1, Ordering::SeqCst);
                lock.release(pid);
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        let stats = lock.stats();
        assert_eq!(stats.cs_entries(), 0, "cs_entries counts facade locks only");
        assert_eq!(stats.overflow_attempts(), 0);
        assert!(stats.fast_path_hits() <= 2);
    });
}

#[test]
fn loom_bakery_pp_tiny_bound_never_overflows() {
    loom::model(|| {
        let lock = Arc::new(BakeryPlusPlusLock::with_bound(2, 2));
        let mut handles = Vec::new();
        for pid in 0..2 {
            let lock = Arc::clone(&lock);
            handles.push(thread::spawn(move || {
                lock.acquire(pid);
                lock.release(pid);
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(lock.stats().overflow_attempts(), 0);
    });
}
