//! loom model-checking of the real atomics-based locks.
//!
//! These tests only compile and run under `RUSTFLAGS="--cfg loom"`:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p bakery-core --test loom --release
//! ```
//!
//! They complement the `bakery-mc` explicit-state checker: `bakery-mc`
//! verifies the *abstract algorithm* under the paper's register model, while
//! loom verifies this crate's *implementation* (SeqCst atomics) under the C11
//! memory model for two threads.
#![cfg(loom)]

use std::sync::Arc;

use bakery_core::{BakeryLock, BakeryPlusPlusLock, RawMutexAlgorithm, TreeBakery};
use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::thread;

fn check_two_thread_mutex<L, F>(make: F)
where
    L: RawMutexAlgorithm + 'static,
    F: Fn() -> L + Sync + Send + 'static,
{
    loom::model(move || {
        let lock = Arc::new(make());
        let in_cs = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for pid in 0..2 {
            let lock = Arc::clone(&lock);
            let in_cs = Arc::clone(&in_cs);
            handles.push(thread::spawn(move || {
                lock.acquire(pid);
                assert_eq!(in_cs.fetch_add(1, Ordering::SeqCst), 0);
                in_cs.fetch_sub(1, Ordering::SeqCst);
                lock.release(pid);
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
    });
}

#[test]
fn loom_bakery_two_threads() {
    check_two_thread_mutex(|| BakeryLock::new(2));
}

#[test]
fn loom_bakery_pp_two_threads() {
    check_two_thread_mutex(|| BakeryPlusPlusLock::with_bound(2, 8));
}

#[test]
fn loom_bakery_padded_baseline_two_threads() {
    use bakery_core::{registers::OverflowPolicy, ScanMode};
    check_two_thread_mutex(|| {
        BakeryLock::with_config(2, u64::MAX, OverflowPolicy::Wrap, ScanMode::Padded)
    });
}

/// Smoke test of the relaxed-ordering fast path: with both threads racing,
/// the packed-snapshot emptiness check must never let two processes into the
/// critical section together, and every acquisition is either a fast-path hit
/// or a completed wait-loop pass.
#[test]
fn loom_packed_fast_path_preserves_mutual_exclusion() {
    loom::model(|| {
        let lock = Arc::new(BakeryPlusPlusLock::with_bound(2, 255)); // u8 lanes
        let in_cs = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for pid in 0..2 {
            let lock = Arc::clone(&lock);
            let in_cs = Arc::clone(&in_cs);
            handles.push(thread::spawn(move || {
                lock.acquire(pid);
                assert_eq!(in_cs.fetch_add(1, Ordering::SeqCst), 0);
                in_cs.fetch_sub(1, Ordering::SeqCst);
                lock.release(pid);
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        let stats = lock.stats();
        assert_eq!(stats.cs_entries(), 0, "cs_entries counts facade locks only");
        assert_eq!(stats.overflow_attempts(), 0);
        assert!(stats.fast_path_hits() <= 2);
    });
}

/// The tree composite under interleaving: two levels (binary, four
/// processes), every pid on a distinct leaf slot.  Mutual exclusion must hold
/// across the whole tournament, and no node may ever attempt an overflowing
/// store (per-node M = 3).
#[test]
fn loom_tree_bakery_two_levels_four_processes() {
    loom::model(|| {
        let lock = Arc::new(TreeBakery::with_arity(4, 2));
        let in_cs = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for pid in 0..4 {
            let lock = Arc::clone(&lock);
            let in_cs = Arc::clone(&in_cs);
            handles.push(thread::spawn(move || {
                lock.acquire(pid);
                assert_eq!(in_cs.fetch_add(1, Ordering::SeqCst), 0);
                in_cs.fetch_sub(1, Ordering::SeqCst);
                lock.release(pid);
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        let total = lock.aggregate_snapshot();
        assert_eq!(total.overflow_attempts, 0);
        assert!(total.max_ticket <= lock.bound());
    });
}

/// Targeted race for the PR 1 fast path: thread 0's empty-bitmap check runs
/// concurrently with thread 1's doorway entry.  Whatever the interleaving,
/// either thread 0 sees the bakery empty *before* thread 1's ticket store
/// became visible (in which case the SeqCst handshake fences force thread 1
/// to observe thread 0's ticket and wait), or thread 0 sees the contender
/// and takes the wait loops — mutual exclusion must hold either way.
#[test]
fn loom_packed_empty_check_races_concurrent_doorway() {
    loom::model(|| {
        let lock = Arc::new(BakeryLock::new(2));
        let in_cs = Arc::new(AtomicUsize::new(0));
        let fast = {
            let lock = Arc::clone(&lock);
            let in_cs = Arc::clone(&in_cs);
            thread::spawn(move || {
                // Repeated acquires: the second pass is the likeliest to hit
                // the emptiness check exactly while pid 1 is mid-doorway.
                for _ in 0..2 {
                    lock.acquire(0);
                    assert_eq!(in_cs.fetch_add(1, Ordering::SeqCst), 0);
                    in_cs.fetch_sub(1, Ordering::SeqCst);
                    lock.release(0);
                }
            })
        };
        let doorway = {
            let lock = Arc::clone(&lock);
            let in_cs = Arc::clone(&in_cs);
            thread::spawn(move || {
                let _ = lock.try_doorway(1);
                lock.await_turn(1);
                assert_eq!(in_cs.fetch_add(1, Ordering::SeqCst), 0);
                in_cs.fetch_sub(1, Ordering::SeqCst);
                lock.release(1);
            })
        };
        fast.join().unwrap();
        doorway.join().unwrap();
        // Each of thread 0's two acquisitions plus thread 1's await_turn may
        // fast-path (a process's own ticket is masked out of the check).
        assert!(lock.stats().fast_path_hits() <= 3);
    });
}

#[test]
fn loom_bakery_pp_tiny_bound_never_overflows() {
    loom::model(|| {
        let lock = Arc::new(BakeryPlusPlusLock::with_bound(2, 2));
        let mut handles = Vec::new();
        for pid in 0..2 {
            let lock = Arc::clone(&lock);
            handles.push(thread::spawn(move || {
                lock.acquire(pid);
                lock.release(pid);
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(lock.stats().overflow_attempts(), 0);
    });
}

/// The session plane's attach/release vs slot-recycle race (PR 4): on a
/// one-seat plane, thread A runs a full session lifecycle (attach → lock →
/// unlock → detach) while thread B races to attach, lock and detach on the
/// same seat.  Whatever the interleaving:
///
/// * the two sessions never hold the seat simultaneously (the leases
///   serialise — observed as mutual exclusion of the critical sections),
/// * the generation tag prevents the ABA where B's attach lands between A's
///   release and A's detach and A's detach then frees *B's* lease, and
/// * both lifecycles complete: exactly 2 attaches, 2 detaches, 2 entries.
#[test]
fn loom_session_attach_recycle_race() {
    use bakery_core::SessionPlane;
    loom::model(|| {
        let plane = SessionPlane::new(Arc::new(BakeryPlusPlusLock::with_bound(1, 8)));
        let in_cs = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let plane = Arc::clone(&plane);
            let in_cs = Arc::clone(&in_cs);
            handles.push(thread::spawn(move || {
                let session = plane.attach();
                assert_eq!(session.pid(), 0, "one seat");
                {
                    let _guard = session.lock();
                    assert_eq!(in_cs.fetch_add(1, Ordering::SeqCst), 0);
                    in_cs.fetch_sub(1, Ordering::SeqCst);
                }
                drop(session);
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        let stats = plane.stats();
        assert_eq!(stats.attaches(), 2);
        assert_eq!(stats.detaches(), 2);
        assert_eq!(stats.cs_entries(), 2);
        assert_eq!(plane.live_sessions(), 0, "both seats recycled cleanly");
    });
}

/// The reverse drain handshake under interleaving (the PR 5 race): with the
/// adaptive lock resident on the tree plane, thread A's session acquisition
/// runs the announce-then-recheck half (`tree_active += 1`, re-read the full
/// epoch word) while thread B stores `DRAIN_TREE` and reads `tree_active` —
/// the two halves of the reverse Dekker handshake.  Whatever the
/// interleaving:
///
/// * either A's announcement lands before B's read (B waits the acquisition
///   out) or A observes the advanced word and withdraws — a tree acquisition
///   never overlaps the post-flip flat era (observed as mutual exclusion),
/// * B's acquisition routes through the flat plane of cycle 1 only after the
///   tree fully drained, and
/// * exactly one reverse migration completes, leaving the lock flat-resident
///   with balanced announce counters (every session detaches cleanly).
#[test]
fn loom_session_reverse_drain_handshake() {
    use bakery_core::{AdaptiveBakery, ScanMode, SessionPlane};
    loom::model(|| {
        // Forward thresholds out of reach and a huge quiet period: only the
        // manual triggers move the epoch, so the race below is pure
        // reverse-handshake.
        let adaptive = Arc::new(AdaptiveBakery::with_hysteresis(
            2,
            ScanMode::Packed,
            8,
            u64::MAX,
            1,
            1_000_000,
        ));
        let plane = SessionPlane::new(Arc::clone(&adaptive) as Arc<_>);
        // Setup: migrate forward so the race starts tree-resident.
        adaptive.trigger_migration();
        {
            let session = plane.attach();
            let _g = session.lock(); // helps the forward drain, enters tree
        }
        assert!(adaptive.has_migrated());
        let in_cs = Arc::new(AtomicUsize::new(0));
        let announcer = {
            let plane = Arc::clone(&plane);
            let in_cs = Arc::clone(&in_cs);
            thread::spawn(move || {
                let session = plane.attach();
                let _g = session.lock(); // announce tree_active, recheck word
                assert_eq!(in_cs.fetch_add(1, Ordering::SeqCst), 0);
                in_cs.fetch_sub(1, Ordering::SeqCst);
            })
        };
        let drainer = {
            let adaptive = Arc::clone(&adaptive);
            let plane = Arc::clone(&plane);
            let in_cs = Arc::clone(&in_cs);
            thread::spawn(move || {
                // DRAIN_TREE store, then the tree_active read inside the
                // drain-helping acquire.
                adaptive.trigger_reverse_migration();
                let session = plane.attach();
                let _g = session.lock(); // flat plane of cycle 1, post-drain
                assert_eq!(in_cs.fetch_add(1, Ordering::SeqCst), 0);
                in_cs.fetch_sub(1, Ordering::SeqCst);
            })
        };
        announcer.join().unwrap();
        drainer.join().unwrap();
        // The drainer's acquisition can only have completed through the
        // cycle-1 flat plane, so the round trip is done.
        assert!(!adaptive.has_migrated(), "flat-resident after the reverse");
        assert_eq!(adaptive.stats().migrations_forward(), 1);
        assert_eq!(adaptive.stats().migrations_reverse(), 1);
        assert_eq!(adaptive.stats().cs_entries(), 3);
        assert_eq!(adaptive.aggregate_snapshot().cs_entries, 3);
        assert_eq!(plane.live_sessions(), 0);
        let stats = plane.stats();
        assert_eq!(stats.attaches(), stats.detaches());
    });
}

/// The PR 6 reap-vs-release race on the seat word: the holder's guard drop
/// (CAS `IN_CS → BUSY`, then release) races a reaper that considers the
/// lease expired.  The quarantine CAS and the exit CAS target the same seat
/// word, so exactly one wins, and that winner owns the single `release`:
///
/// * reaper wins (`quarantined`): the holder's exit CAS fails and it walks
///   away **without releasing**; `recover_quarantined` must then hand the
///   still-held CS back, and dropping the `RecoveredSeat` performs the one
///   release;
/// * holder wins: it releases normally; the reaper either misses its stale
///   quarantine CAS (no-op sweep), catches the momentary post-release `BUSY`
///   window (crash-abort: a register wipe of an already-clean pid), or finds
///   the seat idle-expired and recycles it.
///
/// In every interleaving at most one recovery action is taken and the lock
/// ends up free — no double release, no lost release, no aliasing.
#[test]
fn loom_session_reap_vs_release_exactly_once() {
    use bakery_core::SessionPlane;
    loom::model(|| {
        let lock = Arc::new(BakeryPlusPlusLock::with_bound(1, 8));
        let plane = SessionPlane::with_lease(
            Arc::clone(&lock) as Arc<dyn RawMutexAlgorithm>,
            1,
        );
        let session = plane.attach();
        let guard = session.lock(); // IN_CS; the lease expires at clock 1
        let reaper = {
            let plane = Arc::clone(&plane);
            thread::spawn(move || {
                plane.advance_clock(10);
                plane.reap()
            })
        };
        drop(guard); // races the reaper's quarantine CAS on the seat word
        let report = reaper.join().unwrap();
        assert!(report.total() <= 1, "at most one recovery action per seat");
        assert_eq!(report.refused, 0, "bakery++ supports crash_abort");
        if report.quarantined == 1 {
            // The reaper won the word: the walk-away holder left the lock
            // held, and recovery must be able to take the CS over.
            let recovered = plane
                .recover_quarantined(0)
                .expect("quarantined seat is recoverable");
            assert_eq!(recovered.pid(), 0);
            drop(recovered); // the one release, on the dead holder's behalf
        } else {
            assert!(plane.quarantined_seats().is_empty());
        }
        drop(session); // stale if the seat was recycled: must not free it
        // Whatever the interleaving, the lock ends up free for a fresh
        // acquisition — the release happened exactly once.
        assert!(lock.try_acquire(0), "lock must be free after recovery");
        lock.release(0);
        assert_eq!(plane.live_sessions(), 0, "every lease ended exactly once");
    });
}

/// The park/wake handshake of the [`bakery_core::wait::Park`] strategy (PR 7):
/// a waiter's enlist → fence → revalidate → park sequence races the notifier's
/// state store → fence → registered-read → unpark sequence.  The strategy is
/// built with **no park timeout**, so a lost wakeup does not degrade into a
/// 1ms stall — it hangs the test.  Whatever the interleaving, either the
/// waiter revalidates and sees the flipped flag (never parks) or its parked
/// handle is found and unparked by the notifier.
#[test]
fn loom_park_wake_handshake_no_lost_wakeup() {
    use bakery_core::wait::{Park, WaitHandle, WaitToken};
    loom::model(|| {
        let handle = Arc::new(WaitHandle::new(Arc::new(Park::with_timeout(None))));
        let flag = Arc::new(AtomicUsize::new(0));
        let waiter = {
            let handle = Arc::clone(&handle);
            let flag = Arc::clone(&flag);
            thread::spawn(move || {
                let mut token = WaitToken::new();
                while flag.load(Ordering::SeqCst) == 0 {
                    handle.wait(handle.guard(), &mut token, &mut || {
                        flag.load(Ordering::SeqCst) == 0
                    });
                }
            })
        };
        let notifier = {
            let handle = Arc::clone(&handle);
            let flag = Arc::clone(&flag);
            thread::spawn(move || {
                flag.store(1, Ordering::SeqCst);
                handle.notify(handle.guard());
            })
        };
        waiter.join().unwrap();
        notifier.join().unwrap();
    });
}

/// Same handshake with two waiters parked on one site: a single `notify`
/// must drain every matching entry — a waiter left behind hangs the test
/// (no timeout safety net).
#[test]
fn loom_park_notify_drains_every_waiter() {
    use bakery_core::wait::{Park, WaitHandle, WaitToken};
    loom::model(|| {
        let handle = Arc::new(WaitHandle::new(Arc::new(Park::with_timeout(None))));
        let flag = Arc::new(AtomicUsize::new(0));
        let mut waiters = Vec::new();
        for _ in 0..2 {
            let handle = Arc::clone(&handle);
            let flag = Arc::clone(&flag);
            waiters.push(thread::spawn(move || {
                let mut token = WaitToken::new();
                while flag.load(Ordering::SeqCst) == 0 {
                    handle.wait(handle.guard(), &mut token, &mut || {
                        flag.load(Ordering::SeqCst) == 0
                    });
                }
            }));
        }
        flag.store(1, Ordering::SeqCst);
        handle.notify(handle.guard());
        for waiter in waiters {
            waiter.join().unwrap();
        }
    });
}

/// End-to-end wakeup-chain completeness for the headline lock: a two-thread
/// mutex through [`BakeryLock`] built on a timeout-free [`Park`] strategy.
/// Every blocking site in the L2/L3 scan must have a matching notify on the
/// path that falsifies its predicate (doorway exit or release) — a missing
/// pulse is a hang, not a stall.
#[test]
fn loom_bakery_park_strategy_two_threads_timeout_free() {
    use bakery_core::wait::Park;
    use bakery_core::{registers::OverflowPolicy, ScanMode};
    check_two_thread_mutex(|| {
        BakeryLock::with_config_and_strategy(
            2,
            u64::MAX,
            OverflowPolicy::Wrap,
            ScanMode::Packed,
            Arc::new(Park::with_timeout(None)),
        )
    });
}

/// Generation-tag ABA guard under interleaving: thread A holds a session
/// while thread B force-detaches it and immediately re-leases the seat.  A's
/// subsequent detach (the stale drop) must not free B's fresh lease, in any
/// interleaving of the eviction with A's drop.
#[test]
fn loom_session_stale_drop_cannot_free_fresh_lease() {
    use bakery_core::SessionPlane;
    loom::model(|| {
        let plane = SessionPlane::new(Arc::new(BakeryPlusPlusLock::with_bound(1, 8)));
        let stale = plane.attach();
        let evictor = {
            let plane = Arc::clone(&plane);
            thread::spawn(move || {
                // Evict the idle session and take the seat for ourselves.
                if plane.force_detach(0) {
                    let fresh = plane.attach();
                    Some(fresh.generation())
                } else {
                    None
                }
            })
        };
        // Race the stale drop against the eviction + re-lease.
        drop(stale);
        let fresh_gen = evictor.join().unwrap();
        match fresh_gen {
            // Eviction won: the fresh lease was dropped inside the evictor
            // thread (one more attach/detach pair); the stale drop must have
            // been a no-op on it.
            Some(gen) => assert!(gen >= 1, "re-lease sees a bumped generation"),
            // The stale drop won the race: nothing left to evict.
            None => {}
        }
        assert_eq!(plane.live_sessions(), 0);
        let stats = plane.stats();
        assert_eq!(stats.attaches(), stats.detaches(), "every lease detached exactly once");
    });
}
