//! Lock statistics counters.
//!
//! Every lock in the suite exposes a [`LockStats`] describing what happened
//! since construction: critical-section entries, overflow attempts, Bakery++
//! reset branches, `L1` admission waits and doorway (`L2`/`L3`) wait
//! iterations, plus the largest ticket value ever stored.  The experiment
//! harness (crate `bakery-harness`) aggregates these counters into the tables
//! of EXPERIMENTS.md, so they are cheap, always-on relaxed atomics rather than
//! an optional feature.

use std::fmt;

use crate::sync::{AtomicU64, Ordering};

/// Monotonic counters describing a lock's lifetime behaviour.
///
/// All counters use relaxed atomics: they are diagnostics, not part of the
/// mutual-exclusion protocol, and must never introduce synchronization that
/// could mask protocol bugs.
#[derive(Debug, Default)]
pub struct LockStats {
    cs_entries: AtomicU64,
    overflow_attempts: AtomicU64,
    resets: AtomicU64,
    l1_waits: AtomicU64,
    doorway_waits: AtomicU64,
    max_ticket: AtomicU64,
    fast_path_hits: AtomicU64,
    attaches: AtomicU64,
    detaches: AtomicU64,
    migrations_forward: AtomicU64,
    migrations_reverse: AtomicU64,
    crash_aborts: AtomicU64,
    seat_recoveries: AtomicU64,
}

impl LockStats {
    /// Creates a zeroed statistics block.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of completed critical-section entries.
    #[must_use]
    pub fn cs_entries(&self) -> u64 {
        self.cs_entries.load(Ordering::Relaxed) // mem: stats-relaxed
    }

    /// Number of attempts to store a ticket above the register bound.
    ///
    /// For [`crate::BakeryPlusPlusLock`] this is zero by construction
    /// (Theorem, paper §6.1); for the bounded classic Bakery it counts the
    /// Section 3 failures.
    #[must_use]
    pub fn overflow_attempts(&self) -> u64 {
        self.overflow_attempts.load(Ordering::Relaxed) // mem: stats-relaxed
    }

    /// Number of times the Bakery++ reset branch (`number[i] := 0; goto L1`)
    /// was taken.
    #[must_use]
    pub fn resets(&self) -> u64 {
        self.resets.load(Ordering::Relaxed) // mem: stats-relaxed
    }

    /// Number of wait iterations spent at Bakery++'s `L1` admission guard.
    #[must_use]
    pub fn l1_waits(&self) -> u64 {
        self.l1_waits.load(Ordering::Relaxed) // mem: stats-relaxed
    }

    /// Number of wait iterations spent in the `L2`/`L3` scan loops.
    #[must_use]
    pub fn doorway_waits(&self) -> u64 {
        self.doorway_waits.load(Ordering::Relaxed) // mem: stats-relaxed
    }

    /// The largest ticket value this lock ever stored in a `number` register.
    #[must_use]
    pub fn max_ticket(&self) -> u64 {
        self.max_ticket.load(Ordering::Relaxed) // mem: stats-relaxed
    }

    /// Number of acquisitions that took the packed-snapshot fast path (the
    /// empty-bakery check let the lock skip the per-contender wait loops).
    ///
    /// Always zero for locks without a packed snapshot plane — the counter
    /// lives here, in the stats block every algorithm shares, so E6/E7
    /// reports compare all locks like for like.
    #[must_use]
    pub fn fast_path_hits(&self) -> u64 {
        self.fast_path_hits.load(Ordering::Relaxed) // mem: stats-relaxed
    }

    /// Records a completed critical-section entry.
    pub fn record_cs_entry(&self) {
        self.cs_entries.fetch_add(1, Ordering::Relaxed); // mem: stats-relaxed
    }

    /// Records an attempt to store `attempted` above the bound.
    pub fn record_overflow(&self, attempted: u64) {
        self.overflow_attempts.fetch_add(1, Ordering::Relaxed); // mem: stats-relaxed
        self.record_ticket(attempted);
    }

    /// Records one Bakery++ reset branch.
    pub fn record_reset(&self) {
        self.resets.fetch_add(1, Ordering::Relaxed); // mem: stats-relaxed
    }

    /// Records `iterations` wait rounds at the `L1` admission guard.
    pub fn record_l1_waits(&self, iterations: u64) {
        if iterations > 0 {
            self.l1_waits.fetch_add(iterations, Ordering::Relaxed); // mem: stats-relaxed
        }
    }

    /// Records `iterations` wait rounds in the `L2`/`L3` loops.
    pub fn record_doorway_waits(&self, iterations: u64) {
        if iterations > 0 {
            self.doorway_waits.fetch_add(iterations, Ordering::Relaxed); // mem: stats-relaxed
        }
    }

    /// Records a stored (or attempted) ticket value for the high-water mark.
    pub fn record_ticket(&self, value: u64) {
        self.max_ticket.fetch_max(value, Ordering::Relaxed); // mem: stats-relaxed
    }

    /// Records one fast-path acquisition.
    pub fn record_fast_path_hit(&self) {
        self.fast_path_hits.fetch_add(1, Ordering::Relaxed); // mem: stats-relaxed
    }

    /// Number of sessions ever attached to this lock through the session
    /// plane ([`crate::session::SessionPlane`]).  Zero for locks driven
    /// through plain [`crate::Slot`]s.
    #[must_use]
    pub fn attaches(&self) -> u64 {
        self.attaches.load(Ordering::Relaxed) // mem: stats-relaxed
    }

    /// Number of sessions ever detached from this lock through the session
    /// plane.  `attaches() - detaches()` is the live-session count.
    #[must_use]
    pub fn detaches(&self) -> u64 {
        self.detaches.load(Ordering::Relaxed) // mem: stats-relaxed
    }

    /// Records one session attach.
    pub fn record_attach(&self) {
        self.attaches.fetch_add(1, Ordering::Relaxed); // mem: stats-relaxed
    }

    /// Records one session detach.
    pub fn record_detach(&self) {
        self.detaches.fetch_add(1, Ordering::Relaxed); // mem: stats-relaxed
    }

    /// Number of completed forward (flat→tree) migrations of an adaptive
    /// lock ([`crate::AdaptiveBakery`]).  Zero for every other algorithm.
    #[must_use]
    pub fn migrations_forward(&self) -> u64 {
        self.migrations_forward.load(Ordering::Relaxed) // mem: stats-relaxed
    }

    /// Number of completed reverse (tree→flat) migrations of an adaptive
    /// lock.  Zero for every other algorithm.  `migrations_forward()` and
    /// `migrations_reverse()` can never differ by more than one: the epoch
    /// cycle alternates the two directions by construction.
    #[must_use]
    pub fn migrations_reverse(&self) -> u64 {
        self.migrations_reverse.load(Ordering::Relaxed) // mem: stats-relaxed
    }

    /// Records one completed forward (flat→tree) migration.
    pub fn record_migration_forward(&self) {
        self.migrations_forward.fetch_add(1, Ordering::Relaxed); // mem: stats-relaxed
    }

    /// Records one completed reverse (tree→flat) migration.
    pub fn record_migration_reverse(&self) {
        self.migrations_reverse.fetch_add(1, Ordering::Relaxed); // mem: stats-relaxed
    }

    /// Number of completed crash aborts: a pre-CS acquisition torn down via
    /// [`crate::raw::RawMutexAlgorithm::crash_abort`], leaving the pid's own
    /// registers reading zero (the paper's crash rule, assumptions 1.5–1.7).
    #[must_use]
    pub fn crash_aborts(&self) -> u64 {
        self.crash_aborts.load(Ordering::Relaxed) // mem: stats-relaxed
    }

    /// Number of seats the session plane's reaper recovered from dead
    /// holders ([`crate::session::SessionPlane::reap`]) — crash-aborted and
    /// recycled, or quarantined for explicit recovery.
    #[must_use]
    pub fn seat_recoveries(&self) -> u64 {
        self.seat_recoveries.load(Ordering::Relaxed) // mem: stats-relaxed
    }

    /// Records one completed crash abort.
    pub fn record_crash_abort(&self) {
        self.crash_aborts.fetch_add(1, Ordering::Relaxed); // mem: stats-relaxed
    }

    /// Records one seat recovered by the reaper.
    pub fn record_seat_recovery(&self) {
        self.seat_recoveries.fetch_add(1, Ordering::Relaxed); // mem: stats-relaxed
    }

    /// Copies the counters into a plain snapshot struct.
    #[must_use]
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            cs_entries: self.cs_entries(),
            overflow_attempts: self.overflow_attempts(),
            resets: self.resets(),
            l1_waits: self.l1_waits(),
            doorway_waits: self.doorway_waits(),
            max_ticket: self.max_ticket(),
            fast_path_hits: self.fast_path_hits(),
            attaches: self.attaches(),
            detaches: self.detaches(),
            migrations_forward: self.migrations_forward(),
            migrations_reverse: self.migrations_reverse(),
            crash_aborts: self.crash_aborts(),
            seat_recoveries: self.seat_recoveries(),
        }
    }
}

/// A plain-data copy of [`LockStats`] at one point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// See [`LockStats::cs_entries`].
    pub cs_entries: u64,
    /// See [`LockStats::overflow_attempts`].
    pub overflow_attempts: u64,
    /// See [`LockStats::resets`].
    pub resets: u64,
    /// See [`LockStats::l1_waits`].
    pub l1_waits: u64,
    /// See [`LockStats::doorway_waits`].
    pub doorway_waits: u64,
    /// See [`LockStats::max_ticket`].
    pub max_ticket: u64,
    /// See [`LockStats::fast_path_hits`].
    pub fast_path_hits: u64,
    /// See [`LockStats::attaches`].
    pub attaches: u64,
    /// See [`LockStats::detaches`].
    pub detaches: u64,
    /// See [`LockStats::migrations_forward`].
    pub migrations_forward: u64,
    /// See [`LockStats::migrations_reverse`].
    pub migrations_reverse: u64,
    /// See [`LockStats::crash_aborts`].
    pub crash_aborts: u64,
    /// See [`LockStats::seat_recoveries`].
    pub seat_recoveries: u64,
}

impl StatsSnapshot {
    /// Folds `other` into `self`: counters add, the ticket high-water mark
    /// takes the maximum.  Used by composite locks (the tree plane) to
    /// aggregate per-node and per-level statistics.
    pub fn merge(&mut self, other: &StatsSnapshot) {
        self.cs_entries += other.cs_entries;
        self.overflow_attempts += other.overflow_attempts;
        self.resets += other.resets;
        self.l1_waits += other.l1_waits;
        self.doorway_waits += other.doorway_waits;
        self.max_ticket = self.max_ticket.max(other.max_ticket);
        self.fast_path_hits += other.fast_path_hits;
        self.attaches += other.attaches;
        self.detaches += other.detaches;
        self.migrations_forward += other.migrations_forward;
        self.migrations_reverse += other.migrations_reverse;
        self.crash_aborts += other.crash_aborts;
        self.seat_recoveries += other.seat_recoveries;
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cs={} overflows={} resets={} l1_waits={} doorway_waits={} max_ticket={} \
             fast_path={} attaches={} detaches={} migrations={}/{} crash_aborts={} \
             seat_recoveries={}",
            self.cs_entries,
            self.overflow_attempts,
            self.resets,
            self.l1_waits,
            self.doorway_waits,
            self.max_ticket,
            self.fast_path_hits,
            self.attaches,
            self.detaches,
            self.migrations_forward,
            self.migrations_reverse,
            self.crash_aborts,
            self.seat_recoveries
        )
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn new_stats_are_zero() {
        let s = LockStats::new();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn counters_accumulate() {
        let s = LockStats::new();
        s.record_cs_entry();
        s.record_cs_entry();
        s.record_reset();
        s.record_l1_waits(3);
        s.record_doorway_waits(5);
        s.record_ticket(42);
        s.record_fast_path_hit();
        assert_eq!(s.cs_entries(), 2);
        assert_eq!(s.resets(), 1);
        assert_eq!(s.l1_waits(), 3);
        assert_eq!(s.doorway_waits(), 5);
        assert_eq!(s.max_ticket(), 42);
        assert_eq!(s.fast_path_hits(), 1);
    }

    #[test]
    fn zero_wait_records_are_ignored() {
        let s = LockStats::new();
        s.record_l1_waits(0);
        s.record_doorway_waits(0);
        assert_eq!(s.l1_waits(), 0);
        assert_eq!(s.doorway_waits(), 0);
    }

    #[test]
    fn overflow_updates_high_water_mark() {
        let s = LockStats::new();
        s.record_overflow(300);
        assert_eq!(s.overflow_attempts(), 1);
        assert_eq!(s.max_ticket(), 300);
        s.record_ticket(10);
        assert_eq!(s.max_ticket(), 300, "max is monotone");
    }

    #[test]
    fn snapshot_displays_all_fields() {
        let s = LockStats::new();
        s.record_cs_entry();
        let text = s.snapshot().to_string();
        assert!(text.contains("cs=1"));
        assert!(text.contains("overflows=0"));
        assert!(text.contains("max_ticket=0"));
    }

    #[test]
    fn snapshot_merge_adds_counters_and_maxes_tickets() {
        let a = LockStats::new();
        a.record_cs_entry();
        a.record_ticket(9);
        a.record_doorway_waits(2);
        let b = LockStats::new();
        b.record_cs_entry();
        b.record_cs_entry();
        b.record_ticket(4);
        b.record_fast_path_hit();
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.cs_entries, 3);
        assert_eq!(merged.doorway_waits, 2);
        assert_eq!(merged.max_ticket, 9, "high-water mark takes the max");
        assert_eq!(merged.fast_path_hits, 1);
    }

    #[test]
    fn migration_counters_accumulate_and_merge() {
        let s = LockStats::new();
        s.record_migration_forward();
        s.record_migration_reverse();
        s.record_migration_forward();
        assert_eq!(s.migrations_forward(), 2);
        assert_eq!(s.migrations_reverse(), 1);
        let other = LockStats::new();
        other.record_migration_reverse();
        let mut merged = s.snapshot();
        merged.merge(&other.snapshot());
        assert_eq!(merged.migrations_forward, 2);
        assert_eq!(merged.migrations_reverse, 2);
        assert!(s.snapshot().to_string().contains("migrations=2/1"));
    }

    #[test]
    fn crash_counters_accumulate_merge_and_display() {
        let s = LockStats::new();
        s.record_crash_abort();
        s.record_crash_abort();
        s.record_seat_recovery();
        assert_eq!(s.crash_aborts(), 2);
        assert_eq!(s.seat_recoveries(), 1);
        let other = LockStats::new();
        other.record_crash_abort();
        other.record_seat_recovery();
        let mut merged = s.snapshot();
        merged.merge(&other.snapshot());
        assert_eq!(merged.crash_aborts, 3);
        assert_eq!(merged.seat_recoveries, 2);
        let text = s.snapshot().to_string();
        assert!(text.contains("crash_aborts=2"));
        assert!(text.contains("seat_recoveries=1"));
    }

    #[test]
    fn stats_are_shareable_across_threads() {
        use std::sync::Arc;
        let s = Arc::new(LockStats::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.record_cs_entry();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.cs_entries(), 4000);
    }
}
