//! # bakery-core
//!
//! Production-quality implementations of **Lamport's Bakery algorithm** and of
//! **Bakery++**, the overflow-avoiding variant introduced in *"Avoiding
//! Register Overflow in the Bakery Algorithm"* (Sayyadabdi & Sharifi, ICPP
//! 2020).
//!
//! The crate models the paper's system faithfully:
//!
//! * every shared cell is a **single-writer multi-reader register** — process
//!   *i* may only ever write `choosing[i]` and `number[i]`, which the API
//!   enforces with [`Slot`] ownership tokens;
//! * registers are **bounded**: a register created with bound `M` can never
//!   hold a value above `M`, and any attempt to store a larger value is an
//!   *overflow* which is either reported, saturated, wrapped or turned into a
//!   panic depending on the configured [`OverflowPolicy`];
//! * the classic [`BakeryLock`](bakery::BakeryLock) exhibits exactly the
//!   failure mode the paper's Section 3 describes once its registers are
//!   bounded, while [`BakeryPlusPlusLock`](bakery_pp::BakeryPlusPlusLock)
//!   provably never attempts to store a value above its bound.
//!
//! ## Quick start
//!
//! ```
//! use bakery_core::{BakeryPlusPlusLock, RawMutexAlgorithm};
//!
//! // A lock for up to 4 participating processes with register bound M = 255.
//! let lock = BakeryPlusPlusLock::with_bound(4, 255);
//! let slot = lock.register().expect("a free process slot");
//!
//! let mut shared = 0u64;
//! for _ in 0..100 {
//!     let _guard = lock.lock(&slot);
//!     // critical section
//!     shared += 1;
//! }
//! assert_eq!(shared, 100);
//! assert_eq!(lock.stats().overflow_attempts(), 0);
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`ticket`] | bounded ticket values and the paper's lexicographic `(number, pid)` order |
//! | [`registers`] | bounded single-writer registers, register files, overflow accounting |
//! | [`snapshot`] | the packed snapshot plane: choosing bitmap + dense ticket lanes, scan modes |
//! | [`slots`] | process slot allocation (which thread plays which process id) |
//! | [`raw`] | the object-safe [`RawMutexAlgorithm`] trait every lock implements |
//! | [`guard`] | RAII critical-section guards |
//! | [`bakery`] | Lamport's original Bakery algorithm (Algorithm 1 of the paper) |
//! | [`bakery_pp`] | Bakery++ (Algorithm 2 of the paper) |
//! | [`tree`] | tournament-of-bounded-bakeries: the K-ary [`TreeBakery`] composite |
//! | [`session`] | dynamic membership: pid-slot leasing with RAII [`Session`]s |
//! | [`asession`] | async session clients: cancellation-safe `attach().await` / `lock().await` |
//! | [`adaptive`] | [`AdaptiveBakery`]: flat Bakery++ ⇄ tree round-trip migration under load |
//! | [`wait`] | pluggable wait strategies (spin / yield / park) behind every busy-wait |
//! | [`backoff`] | spin/yield backoff, the [`wait::Spin`] baseline discipline |
//! | [`stats`] | lock statistics (overflows, resets, doorway waits, fast-path hits, …) |
//!
//! ## The packed snapshot plane
//!
//! The authoritative [`RegisterFile`] keeps each register in its own
//! cache-padded slot so single writers never false-share, but that makes the
//! doorway's `maximum(...)` scan and the `L2`/`L3` wait loops touch `N`
//! cache lines per pass.  In the default [`ScanMode::Packed`] the file also
//! maintains a [`PackedSnapshot`] mirror — a one-bit-per-process `choosing`
//! bitmap plus `u8`/`u16`/`u64` ticket lanes chosen from the bound `M` — so
//! scans read `O(N/8)` words, and an empty-bakery check gives an uncontended
//! **fast path** that skips the wait loops entirely (counted by
//! [`LockStats::fast_path_hits`]).  The mirror is a performance cache only:
//! the padded plane remains the source of truth for the paper's SWMR
//! discipline and overflow accounting, and every lane update is a single
//! atomic splice, so readers stay within the paper's safe-register model.
//! [`ScanMode::Padded`] preserves the seed's layout and orderings as a
//! like-for-like baseline (see the `bench-json` binary in `bakery-bench`).
//!
//! ## The tree plane
//!
//! Flat Bakery doorways are O(N) however densely the registers are packed,
//! which caps practical process counts around the low hundreds.  The [`tree`]
//! module composes bounded-bakery nodes into a K-ary tournament instead:
//! `N` processes sit at the leaves, every internal node is an independent
//! [`BakeryPlusPlusLock`] for `K` participants with per-node bound
//! `M = K + 1` and its own packed snapshot plane, and a process acquires the
//! nodes on its leaf-to-root path (releasing in reverse).  Doorway cost drops
//! to `O(K · log_K N)` — sub-linear in N — opening the N ≫ 128 scenarios the
//! registry previously topped out at.  Per-node tickets stay in `[0, K + 1]`
//! by the paper's Theorem applied node-locally, so the composite never
//! overflows either.  The composition is verified by the `bakery-spec::tree`
//! state machine (model checked in `bakery-mc`), the differential conformance
//! suite (`tests/conformance.rs`) and the loom interleaving tests.
//!
//! ## Memory ordering
//!
//! The paper's model assumes registers that are at least *safe* and an
//! interleaving semantics of whole read/write operations.  In
//! [`ScanMode::Padded`] every protocol access is `SeqCst`, exactly as the
//! seed implementation.  In [`ScanMode::Packed`] the locks use
//! release stores / acquire loads plus **two targeted `SeqCst` fences** per
//! doorway pass — one between `choosing[i] := 1` and the maximum scan, one
//! between the ticket store and the `L2`/`L3` loads — which are the only
//! store→load orderings the correctness argument needs (the Dekker-style
//! handshakes; cf. van Glabbeek, Luttik & Spronck, *Just Verification of
//! Mutual Exclusion Algorithms*, on how little of SC the Bakery proof
//! actually uses).  The choice is exercised by the loom tests in
//! `crates/core/tests/loom.rs` and the `ablation`/`bench-json` benchmarks.
//! The abstract, paper-level semantics (including safe-register reads that
//! may return arbitrary values) are model checked by the companion
//! `bakery-spec` / `bakery-mc` crates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adaptive;
pub mod asession;
pub mod backoff;
pub mod bakery;
pub mod bakery_pp;
pub mod guard;
pub mod raw;
pub mod registers;
pub mod session;
pub mod slots;
pub mod snapshot;
pub mod stats;
pub mod sync;
pub mod ticket;
pub mod tree;
pub mod wait;

pub use adaptive::AdaptiveBakery;
pub use bakery::BakeryLock;
pub use bakery_pp::{BakeryPlusPlusLock, DEFAULT_PP_BOUND};
pub use guard::CriticalSectionGuard;
pub use raw::{DoorwayOutcome, LockError, RawMutexAlgorithm};

pub use registers::{BoundedRegister, OverflowEvent, OverflowPolicy, RegisterFile};
pub use session::{
    ReapReport, RecoveredSeat, Session, SessionError, SessionGuard, SessionPlane, LEASE_FOREVER,
};
pub use slots::{Slot, SlotError};
pub use snapshot::{LaneWidth, PackedSnapshot, ScanMode};
pub use stats::LockStats;
pub use asession::{AttachBatchFuture, AttachFuture, SessionLockFuture};
pub use ticket::{Ticket, TicketOrder};
pub use tree::{TreeBakery, DEFAULT_TREE_ARITY};
pub use wait::{Park, SiteKind, Spin, WaitHandle, WaitSite, WaitStrategy, WaitToken, Yield};

/// Convenience prelude importing the traits and the two headline locks.
pub mod prelude {
    pub use crate::bakery::BakeryLock;
    pub use crate::bakery_pp::BakeryPlusPlusLock;
    pub use crate::raw::{RawMutexAlgorithm};
    pub use crate::registers::OverflowPolicy;
    pub use crate::slots::Slot;
}

/// The default register bound used when a caller does not specify `M`.
///
/// The paper leaves `M` abstract ("the maximum value storable in a register").
/// `u64::MAX` reproduces the *unbounded* behaviour of the original algorithm
/// for all practical purposes, while small values of `M` make the overflow
/// machinery observable in tests and experiments.
pub const DEFAULT_BOUND: u64 = u64::MAX;
