//! [`RawMutexAlgorithm`]: the one object-safe trait behind the whole lock
//! stack.
//!
//! Earlier revisions of this crate split the lock surface into a low-level
//! protocol trait (acquire/release by pid) and a user-facing mutex facade
//! (slots, guards, stats).  Every consumer — the
//! factory/registry in `bakery-baselines`, the workload harness, the
//! conformance plane, the session plane — ended up requiring *both*, so the
//! two layers were unified into a single trait:
//!
//! * the **protocol surface** — [`RawMutexAlgorithm::acquire`],
//!   [`RawMutexAlgorithm::release`], [`RawMutexAlgorithm::try_acquire`] —
//!   "the procedure for process numbered *i*", parameterised only by pid;
//! * the **metadata surface** — [`RawMutexAlgorithm::capacity`],
//!   [`RawMutexAlgorithm::algorithm_name`],
//!   [`RawMutexAlgorithm::shared_word_count`],
//!   [`RawMutexAlgorithm::register_bound`], [`RawMutexAlgorithm::stats`] —
//!   what the experiment harness and reports consume uniformly;
//! * the **facade surface** — default methods ([`RawMutexAlgorithm::lock`],
//!   [`RawMutexAlgorithm::try_lock`], [`RawMutexAlgorithm::register`]) that
//!   allocate process ids as [`Slot`]s and hand out RAII
//!   [`CriticalSectionGuard`]s.
//!
//! The trait is object safe: `Arc<dyn RawMutexAlgorithm>` is the currency of
//! the registry, the workload runner and the session plane
//! ([`crate::session`]), so adding an algorithm never adds a dispatch arm
//! anywhere.
//!
//! # Safety contract
//!
//! Implementations and callers of the pid-level protocol surface must uphold,
//! and may assume, three rules (the same rules the paper's "process *i*"
//! formulation encodes implicitly):
//!
//! 1. **pid in range** — `acquire`/`release`/`try_acquire` are only defined
//!    for `pid < capacity()`; implementations may panic on anything else.
//! 2. **no reentrancy** — a pid that has entered the critical section (via
//!    `acquire`, or a `try_acquire` that returned `true`) must not call
//!    `acquire`/`try_acquire` again until it has called `release`.  A pid is
//!    driven by at most one thread at a time; the [`Slot`] and
//!    [`crate::session::Session`] tokens enforce this structurally.
//! 3. **release after acquire** — every `release(pid)` must pair with exactly
//!    one prior successful acquisition by the same pid.  Releasing an idle pid
//!    or double-releasing corrupts the protocol state (for the Bakery family
//!    it forges `number[i] := 0` stores that break FCFS and, under bounds,
//!    mutual exclusion).
//!
//! These rules are what make the trait implementable with plain single-writer
//! registers — nothing here requires the implementation to defend against a
//! hostile caller, only against concurrency.

use std::fmt;
use std::sync::Arc;

use crate::guard::CriticalSectionGuard;
use crate::slots::{Slot, SlotAllocator, SlotError};
use crate::stats::LockStats;

/// Errors surfaced by the checked locking entry points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockError {
    /// The supplied [`Slot`] was allocated by a different lock instance.
    ForeignSlot {
        /// The pid carried by the foreign slot.
        pid: usize,
    },
    /// Slot allocation failed.
    Slot(SlotError),
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::ForeignSlot { pid } => {
                write!(f, "slot p{pid} belongs to a different lock instance")
            }
            LockError::Slot(err) => write!(f, "slot allocation failed: {err}"),
        }
    }
}

impl std::error::Error for LockError {}

impl From<SlotError> for LockError {
    fn from(err: SlotError) -> Self {
        LockError::Slot(err)
    }
}

/// Result of one non-blocking pass through a lock's doorway (ticket drawing)
/// code.
///
/// The blocking `acquire` path simply retries until it obtains
/// [`DoorwayOutcome::Ticket`]; the experiment harness instead records the
/// outcomes to reproduce the paper's Section 3 scenario and the Bakery++ reset
/// behaviour deterministically, without real threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DoorwayOutcome {
    /// A ticket with the given number was stored in `number[pid]`.
    Ticket(u64),
    /// The ticket computation exceeded the register bound and the configured
    /// overflow policy was applied (classic Bakery on bounded registers only).
    Overflowed {
        /// The value `1 + maximum(...)` the algorithm tried to store.
        attempted: u64,
        /// The value actually stored after the policy was applied.
        stored: u64,
    },
    /// Bakery++'s `L1` admission guard refused entry because some register
    /// already holds a value `≥ M` (the *illegitimate situation*).
    Blocked,
    /// Bakery++ took the reset branch: the observed maximum was `≥ M`, so
    /// `number[pid]` and `choosing[pid]` were reset to zero.
    Reset,
}

impl DoorwayOutcome {
    /// True when a usable ticket was obtained (including an overflowed one —
    /// the classic algorithm proceeds obliviously after an overflow).
    #[must_use]
    pub fn took_ticket(&self) -> bool {
        matches!(self, DoorwayOutcome::Ticket(_) | DoorwayOutcome::Overflowed { .. })
    }
}

/// The one trait every lock in the suite implements — protocol, metadata and
/// facade in a single object-safe surface (see the module docs for the exact
/// safety contract: pid in range, no reentrancy, release after acquire).
pub trait RawMutexAlgorithm: Send + Sync {
    // --- protocol surface -------------------------------------------------

    /// Maximum number of participating processes (the paper's `N`).
    fn capacity(&self) -> usize;

    /// Enters the critical section as process `pid`, blocking until granted.
    ///
    /// # Panics
    /// Implementations may panic if `pid >= capacity()` or if the same pid is
    /// acquired re-entrantly.
    fn acquire(&self, pid: usize);

    /// Leaves the critical section as process `pid`.
    fn release(&self, pid: usize);

    /// One non-blocking attempt to enter the critical section as `pid`.
    ///
    /// Returns `true` with the critical section held, or `false` without any
    /// side effect a concurrent observer could mistake for an acquisition.
    /// **May fail spuriously**: a `false` does not prove the lock was held —
    /// for the read/write-register algorithms a single non-blocking pass can
    /// only establish "I could not prove I may enter", and backing out of the
    /// doorway (resetting the pid's own registers, the paper's crash rule
    /// 1.5–1.7) is itself observable as contention.  The conservative default
    /// always fails; locks with a cheap one-pass entry condition override it.
    fn try_acquire(&self, _pid: usize) -> bool {
        false
    }

    /// Applies the paper's crash rule (assumptions 1.5–1.7) to `pid`: the
    /// process is assumed to have failed at an arbitrary **pre-CS** point —
    /// idle, inside the doorway, or waiting — and restarts in its noncritical
    /// section with all of its own registers reading zero.
    ///
    /// Returns `true` when the abort completed: every register owned by
    /// `pid` (including any packed-mirror lanes) reads zero and the pid may
    /// re-enter from scratch.  Returns `false` when the algorithm cannot
    /// implement the rule — the conservative default, used by baseline locks
    /// whose protocol state is not per-process resettable.
    ///
    /// # Safety contract
    /// The caller must guarantee that `pid`'s driving thread is **dead or
    /// will never touch the lock again**, and that `pid` is *not* inside the
    /// critical section (a crash inside the CS must be quarantined instead —
    /// see [`crate::session::SessionPlane::reap`]; zeroing the holder's
    /// registers there would silently break mutual exclusion).
    fn crash_abort(&self, _pid: usize) -> bool {
        false
    }

    // --- metadata surface -------------------------------------------------

    /// A short human-readable algorithm name used in reports.
    fn algorithm_name(&self) -> &'static str;

    /// Number of shared memory words the protocol uses (experiment **E6**,
    /// the paper's O(N) spatial-complexity claim).
    fn shared_word_count(&self) -> usize;

    /// The ticket register bound `M`, if the algorithm bounds its registers.
    fn register_bound(&self) -> Option<u64> {
        None
    }

    /// The lock's statistics block.
    fn stats(&self) -> &LockStats;

    /// The wait plane the lock's blocking paths run through, when the lock
    /// participates in the pluggable [`crate::wait::WaitStrategy`] machinery.
    ///
    /// The session plane uses this to share the lock's strategy (so its
    /// attach waits park alongside the lock's `L2`/`L3` waits), and the async
    /// clients use it to register wakers on the lock's release pulse.  The
    /// conservative default — baseline locks whose release stores are not
    /// instrumented with notifies — returns `None`; their callers fall back
    /// to the process-wide default strategy.
    fn wait_handle(&self) -> Option<&crate::wait::WaitHandle> {
        None
    }

    /// The lock's slot allocator.
    fn slot_allocator(&self) -> &Arc<SlotAllocator>;

    /// Upcast helper so default methods can build guards over `dyn` locks;
    /// every implementation is literally `self`.
    fn as_raw(&self) -> &dyn RawMutexAlgorithm;

    // --- facade surface (default methods) ---------------------------------

    /// Claims the lowest free process slot.
    fn register(&self) -> Result<Slot, SlotError> {
        self.slot_allocator().claim()
    }

    /// Claims a specific process slot (useful for deterministic experiments).
    fn register_exact(&self, pid: usize) -> Result<Slot, SlotError> {
        self.slot_allocator().claim_exact(pid)
    }

    /// Enters the critical section, returning a guard that releases on drop.
    ///
    /// # Panics
    /// Panics if `slot` was allocated by a different lock instance.
    fn lock<'a>(&'a self, slot: &'a Slot) -> CriticalSectionGuard<'a> {
        match self.checked_lock(slot) {
            Ok(guard) => guard,
            Err(err) => panic!("{err}"),
        }
    }

    /// Like [`RawMutexAlgorithm::lock`] but reports a foreign slot as an
    /// error.
    fn checked_lock<'a>(&'a self, slot: &'a Slot) -> Result<CriticalSectionGuard<'a>, LockError> {
        if !slot.belongs_to(self.slot_allocator()) {
            return Err(LockError::ForeignSlot { pid: slot.pid() });
        }
        self.acquire(slot.pid());
        self.stats().record_cs_entry();
        Ok(CriticalSectionGuard::new(self.as_raw(), slot.pid()))
    }

    /// One non-blocking attempt to enter the critical section; `None` when
    /// the attempt failed (possibly spuriously — see
    /// [`RawMutexAlgorithm::try_acquire`]).
    ///
    /// # Panics
    /// Panics if `slot` was allocated by a different lock instance.
    fn try_lock<'a>(&'a self, slot: &'a Slot) -> Option<CriticalSectionGuard<'a>> {
        assert!(
            slot.belongs_to(self.slot_allocator()),
            "{}",
            LockError::ForeignSlot { pid: slot.pid() }
        );
        if self.try_acquire(slot.pid()) {
            self.stats().record_cs_entry();
            Some(CriticalSectionGuard::new(self.as_raw(), slot.pid()))
        } else {
            None
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn lock_error_display() {
        let e = LockError::ForeignSlot { pid: 3 };
        assert!(e.to_string().contains("different lock instance"));
        let e: LockError = SlotError::Exhausted { capacity: 2 }.into();
        assert!(e.to_string().contains("slot allocation failed"));
    }

    #[test]
    fn try_lock_and_default_try_acquire() {
        use crate::bakery_pp::BakeryPlusPlusLock;
        let lock = BakeryPlusPlusLock::with_bound(2, 100);
        let slot = lock.register().unwrap();
        {
            let g = lock.try_lock(&slot).expect("uncontended try_lock succeeds");
            assert_eq!(g.pid(), 0);
        }
        assert_eq!(lock.stats().cs_entries(), 1);

        // A lock without an override conservatively fails.
        struct NoTry(Arc<SlotAllocator>, LockStats);
        impl RawMutexAlgorithm for NoTry {
            fn capacity(&self) -> usize {
                1
            }
            fn acquire(&self, _pid: usize) {}
            fn release(&self, _pid: usize) {}
            fn algorithm_name(&self) -> &'static str {
                "no-try"
            }
            fn shared_word_count(&self) -> usize {
                0
            }
            fn stats(&self) -> &LockStats {
                &self.1
            }
            fn slot_allocator(&self) -> &Arc<SlotAllocator> {
                &self.0
            }
            fn as_raw(&self) -> &dyn RawMutexAlgorithm {
                self
            }
        }
        let lock = NoTry(SlotAllocator::new(1), LockStats::new());
        let slot = lock.register().unwrap();
        assert!(lock.try_lock(&slot).is_none(), "conservative default fails");
        assert_eq!(lock.stats().cs_entries(), 0);
    }

    #[test]
    #[should_panic(expected = "different lock instance")]
    fn try_lock_rejects_foreign_slot() {
        use crate::bakery_pp::BakeryPlusPlusLock;
        let a = BakeryPlusPlusLock::with_bound(2, 100);
        let b = BakeryPlusPlusLock::with_bound(2, 100);
        let slot = a.register().unwrap();
        let _ = b.try_lock(&slot);
    }
}
