//! Lock traits: the low-level pid-based protocol and the slot-based facade.
//!
//! Two layers mirror how the paper talks about the algorithm:
//!
//! * [`RawNProcessLock`] is the algorithm itself — "the procedure for process
//!   numbered *i*" — parameterised only by the process id.  Everything in the
//!   `bakery-baselines` crate and the benchmark harness works against this
//!   trait so all algorithms are interchangeable.
//! * [`NProcessMutex`] is the user-facing facade: it allocates process ids as
//!   [`Slot`]s, hands out RAII [`CriticalSectionGuard`]s and exposes the
//!   lock's [`LockStats`].  It has blanket default methods, so a lock only
//!   implements the three accessor methods plus `RawNProcessLock`.

use std::fmt;
use std::sync::Arc;

use crate::guard::CriticalSectionGuard;
use crate::slots::{Slot, SlotAllocator, SlotError};
use crate::stats::LockStats;

/// Errors surfaced by the checked locking entry points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockError {
    /// The supplied [`Slot`] was allocated by a different lock instance.
    ForeignSlot {
        /// The pid carried by the foreign slot.
        pid: usize,
    },
    /// Slot allocation failed.
    Slot(SlotError),
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::ForeignSlot { pid } => {
                write!(f, "slot p{pid} belongs to a different lock instance")
            }
            LockError::Slot(err) => write!(f, "slot allocation failed: {err}"),
        }
    }
}

impl std::error::Error for LockError {}

impl From<SlotError> for LockError {
    fn from(err: SlotError) -> Self {
        LockError::Slot(err)
    }
}

/// Result of one non-blocking pass through a lock's doorway (ticket drawing)
/// code.
///
/// The blocking `acquire` path simply retries until it obtains
/// [`DoorwayOutcome::Ticket`]; the experiment harness instead records the
/// outcomes to reproduce the paper's Section 3 scenario and the Bakery++ reset
/// behaviour deterministically, without real threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DoorwayOutcome {
    /// A ticket with the given number was stored in `number[pid]`.
    Ticket(u64),
    /// The ticket computation exceeded the register bound and the configured
    /// overflow policy was applied (classic Bakery on bounded registers only).
    Overflowed {
        /// The value `1 + maximum(...)` the algorithm tried to store.
        attempted: u64,
        /// The value actually stored after the policy was applied.
        stored: u64,
    },
    /// Bakery++'s `L1` admission guard refused entry because some register
    /// already holds a value `≥ M` (the *illegitimate situation*).
    Blocked,
    /// Bakery++ took the reset branch: the observed maximum was `≥ M`, so
    /// `number[pid]` and `choosing[pid]` were reset to zero.
    Reset,
}

impl DoorwayOutcome {
    /// True when a usable ticket was obtained (including an overflowed one —
    /// the classic algorithm proceeds obliviously after an overflow).
    #[must_use]
    pub fn took_ticket(&self) -> bool {
        matches!(self, DoorwayOutcome::Ticket(_) | DoorwayOutcome::Overflowed { .. })
    }
}

/// The low-level N-process mutual exclusion protocol.
///
/// Implementations must guarantee mutual exclusion between distinct process
/// ids when `acquire`/`release` are called in the usual bracketed fashion, and
/// must tolerate a process id never being used.  The trait is object safe so
/// the experiment harness can treat every algorithm uniformly.
pub trait RawNProcessLock: Send + Sync {
    /// Maximum number of participating processes (the paper's `N`).
    fn capacity(&self) -> usize;

    /// Enters the critical section as process `pid`, blocking until granted.
    ///
    /// # Panics
    /// Implementations may panic if `pid >= capacity()` or if the same pid is
    /// acquired re-entrantly.
    fn acquire(&self, pid: usize);

    /// Leaves the critical section as process `pid`.
    fn release(&self, pid: usize);

    /// A short human-readable algorithm name used in reports.
    fn algorithm_name(&self) -> &'static str;

    /// Number of shared memory words the protocol uses (experiment **E6**,
    /// the paper's O(N) spatial-complexity claim).
    fn shared_word_count(&self) -> usize;

    /// The ticket register bound `M`, if the algorithm bounds its registers.
    fn register_bound(&self) -> Option<u64> {
        None
    }
}

/// User-facing facade: slot allocation, RAII guards and statistics.
pub trait NProcessMutex: RawNProcessLock {
    /// The lock's slot allocator.
    fn slot_allocator(&self) -> &Arc<SlotAllocator>;

    /// The lock's statistics block.
    fn stats(&self) -> &LockStats;

    /// Claims the lowest free process slot.
    fn register(&self) -> Result<Slot, SlotError> {
        self.slot_allocator().claim()
    }

    /// Claims a specific process slot (useful for deterministic experiments).
    fn register_exact(&self, pid: usize) -> Result<Slot, SlotError> {
        self.slot_allocator().claim_exact(pid)
    }

    /// Enters the critical section, returning a guard that releases on drop.
    ///
    /// # Panics
    /// Panics if `slot` was allocated by a different lock instance.
    fn lock<'a>(&'a self, slot: &'a Slot) -> CriticalSectionGuard<'a> {
        match self.checked_lock(slot) {
            Ok(guard) => guard,
            Err(err) => panic!("{err}"),
        }
    }

    /// Like [`NProcessMutex::lock`] but reports a foreign slot as an error.
    fn checked_lock<'a>(&'a self, slot: &'a Slot) -> Result<CriticalSectionGuard<'a>, LockError> {
        if !slot.belongs_to(self.slot_allocator()) {
            return Err(LockError::ForeignSlot { pid: slot.pid() });
        }
        self.acquire(slot.pid());
        self.stats().record_cs_entry();
        Ok(CriticalSectionGuard::new(
            self.as_raw(),
            slot.pid(),
        ))
    }

    /// Upcast helper so default methods can build guards over `dyn` locks.
    fn as_raw(&self) -> &dyn RawNProcessLock;
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn lock_error_display() {
        let e = LockError::ForeignSlot { pid: 3 };
        assert!(e.to_string().contains("different lock instance"));
        let e: LockError = SlotError::Exhausted { capacity: 2 }.into();
        assert!(e.to_string().contains("slot allocation failed"));
    }
}
