//! Process slot allocation.
//!
//! The Bakery family identifies participants by a small integer id `i ∈
//! {0, …, N-1}` that indexes the `choosing` and `number` arrays.  A real
//! program has threads, not pre-numbered processes, so each lock owns a
//! [`SlotAllocator`] that hands out ids as [`Slot`] tokens.  Holding the token
//! is the *only* way to call the lock's acquire/release path for that id,
//! which gives two guarantees the paper relies on:
//!
//! * a given process id is driven by at most one thread at a time, and
//! * a thread can only ever write the registers belonging to its own id
//!   (the "no process writes into another process's memory" property).
//!
//! Dropping a `Slot` releases the id after resetting its registers to zero,
//! which is exactly the paper's crash/restart rule (assumptions 1.5–1.7): a
//! departing process looks to everyone else like a process that crashed in its
//! noncritical section.

use std::fmt;
use std::sync::Arc;

use crate::sync::{AtomicBool, Ordering};

/// Errors returned by [`SlotAllocator::claim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotError {
    /// All `N` process slots are currently claimed.
    Exhausted {
        /// The capacity of the lock that rejected the claim.
        capacity: usize,
    },
    /// The requested slot index is outside `0..capacity`.
    OutOfRange {
        /// The requested index.
        requested: usize,
        /// The capacity of the lock.
        capacity: usize,
    },
    /// The requested slot index is already claimed by another thread.
    AlreadyClaimed {
        /// The requested index.
        requested: usize,
    },
}

impl fmt::Display for SlotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SlotError::Exhausted { capacity } => {
                write!(f, "all {capacity} process slots are claimed")
            }
            SlotError::OutOfRange {
                requested,
                capacity,
            } => write!(
                f,
                "slot {requested} is out of range for a lock with {capacity} slots"
            ),
            SlotError::AlreadyClaimed { requested } => {
                write!(f, "slot {requested} is already claimed")
            }
        }
    }
}

impl std::error::Error for SlotError {}

/// Shared bookkeeping of which process ids are currently claimed.
#[derive(Debug)]
pub struct SlotAllocator {
    claimed: Box<[AtomicBool]>,
}

impl SlotAllocator {
    /// Creates an allocator with `n` free slots.
    #[must_use]
    pub fn new(n: usize) -> Arc<Self> {
        assert!(n > 0, "a lock needs at least one process slot");
        Arc::new(Self {
            claimed: (0..n).map(|_| AtomicBool::new(false)).collect(),
        })
    }

    /// Total number of slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.claimed.len()
    }

    /// Number of currently claimed slots.
    #[must_use]
    pub fn claimed_count(&self) -> usize {
        self.claimed
            .iter()
            .filter(|c| c.load(Ordering::SeqCst)) // mem: slot-claim
            .count()
    }

    /// Claims the lowest free slot.
    pub fn claim(self: &Arc<Self>) -> Result<Slot, SlotError> {
        for pid in 0..self.capacity() {
            if self.try_claim_index(pid) {
                return Ok(Slot {
                    pid,
                    allocator: Arc::clone(self),
                });
            }
        }
        Err(SlotError::Exhausted {
            capacity: self.capacity(),
        })
    }

    /// Claims a specific slot index.
    pub fn claim_exact(self: &Arc<Self>, pid: usize) -> Result<Slot, SlotError> {
        if pid >= self.capacity() {
            return Err(SlotError::OutOfRange {
                requested: pid,
                capacity: self.capacity(),
            });
        }
        if self.try_claim_index(pid) {
            Ok(Slot {
                pid,
                allocator: Arc::clone(self),
            })
        } else {
            Err(SlotError::AlreadyClaimed { requested: pid })
        }
    }

    fn try_claim_index(&self, pid: usize) -> bool {
        self.claimed[pid]
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst) // mem: slot-claim
            .is_ok()
    }

    fn release_index(&self, pid: usize) {
        self.claimed[pid].store(false, Ordering::SeqCst); // mem: slot-claim
    }
}

/// An owned process id for one lock instance.
///
/// The slot is released (and becomes claimable again) when dropped.
#[derive(Debug)]
pub struct Slot {
    pid: usize,
    allocator: Arc<SlotAllocator>,
}

impl Slot {
    /// The process id this slot represents.
    #[must_use]
    pub fn pid(&self) -> usize {
        self.pid
    }

    /// True when this slot was handed out by `allocator`.
    ///
    /// Used by the locking facade to reject slots that belong to a different
    /// lock instance, which would otherwise silently break the single-writer
    /// register discipline.
    #[must_use]
    pub fn belongs_to(&self, allocator: &Arc<SlotAllocator>) -> bool {
        Arc::ptr_eq(&self.allocator, allocator)
    }
}

impl fmt::Display for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot p{}", self.pid)
    }
}

impl Drop for Slot {
    fn drop(&mut self) {
        self.allocator.release_index(self.pid);
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn claims_lowest_free_slot_first() {
        let alloc = SlotAllocator::new(3);
        let a = alloc.claim().unwrap();
        let b = alloc.claim().unwrap();
        assert_eq!(a.pid(), 0);
        assert_eq!(b.pid(), 1);
        assert_eq!(alloc.claimed_count(), 2);
    }

    #[test]
    fn exhaustion_is_reported() {
        let alloc = SlotAllocator::new(1);
        let _a = alloc.claim().unwrap();
        let err = alloc.claim().unwrap_err();
        assert_eq!(err, SlotError::Exhausted { capacity: 1 });
        assert!(err.to_string().contains("all 1 process slots"));
    }

    #[test]
    fn dropping_a_slot_frees_it() {
        let alloc = SlotAllocator::new(1);
        {
            let _a = alloc.claim().unwrap();
            assert_eq!(alloc.claimed_count(), 1);
        }
        assert_eq!(alloc.claimed_count(), 0);
        let again = alloc.claim().unwrap();
        assert_eq!(again.pid(), 0);
    }

    #[test]
    fn claim_exact_respects_range_and_conflicts() {
        let alloc = SlotAllocator::new(2);
        let err = alloc.claim_exact(5).unwrap_err();
        assert_eq!(
            err,
            SlotError::OutOfRange {
                requested: 5,
                capacity: 2
            }
        );
        let one = alloc.claim_exact(1).unwrap();
        assert_eq!(one.pid(), 1);
        let err = alloc.claim_exact(1).unwrap_err();
        assert_eq!(err, SlotError::AlreadyClaimed { requested: 1 });
        assert!(err.to_string().contains("already claimed"));
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_capacity_is_rejected() {
        let _ = SlotAllocator::new(0);
    }

    #[test]
    fn slot_display_mentions_pid() {
        let alloc = SlotAllocator::new(2);
        let s = alloc.claim().unwrap();
        assert_eq!(s.to_string(), "slot p0");
    }

    #[test]
    fn concurrent_claims_never_alias() {
        use std::collections::HashSet;
        use std::sync::{Barrier, Mutex};
        let alloc = SlotAllocator::new(8);
        let seen = Mutex::new(HashSet::new());
        // The barrier keeps every slot alive until all eight threads have
        // claimed one, so the pids observed while all are held must be the
        // full distinct set 0..8.
        let all_claimed = Barrier::new(8);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let slot = alloc.claim().unwrap();
                    let fresh = seen.lock().unwrap().insert(slot.pid());
                    assert!(fresh, "two threads claimed pid {}", slot.pid());
                    all_claimed.wait();
                });
            }
        });
        assert_eq!(seen.lock().unwrap().len(), 8);
    }
}
