//! Lamport's original Bakery algorithm (Algorithm 1 of the paper).
//!
//! ```text
//! L1: choosing[i] := 1;
//!     number[i]   := 1 + maximum(number[1], …, number[N]);
//!     choosing[i] := 0;
//!     for j = 1 .. N do
//! L2:     if choosing[j] ≠ 0 then goto L2;
//! L3:     if number[j] ≠ 0 and (number[j], j) < (number[i], i) then goto L3;
//!     critical section;
//!     number[i] := 0;
//! ```
//!
//! The algorithm assumes *unbounded* registers.  [`BakeryLock`] makes the
//! register bound explicit: with the default bound (`u64::MAX`) it behaves as
//! the textbook algorithm, and with a small bound it exhibits exactly the
//! failure the paper's Section 3 predicts — the ticket `1 + maximum(...)`
//! eventually exceeds `M` and the configured [`OverflowPolicy`] (machine
//! wrap-around by default) silently corrupts the ordering, which can violate
//! mutual exclusion.  Experiments **E1** and **E2** demonstrate both halves.
//!
//! Besides the blocking [`RawMutexAlgorithm::acquire`] path the lock exposes the
//! two protocol phases separately — [`BakeryLock::try_doorway`] and
//! [`BakeryLock::await_turn`] — so the experiment harness can replay the
//! paper's prose scenarios deterministically without spawning threads.

use std::sync::Arc;

use crate::raw::{DoorwayOutcome, RawMutexAlgorithm};
use crate::registers::{OverflowPolicy, RegisterFile};
use crate::slots::SlotAllocator;
use crate::snapshot::{PackedSnapshot, ScanMode};
use crate::stats::LockStats;
use crate::sync::{fence, Ordering};
use crate::ticket::{Ticket, TicketOrder};
use crate::wait::{WaitHandle, WaitSite, WaitStrategy, WaitToken};
use crate::DEFAULT_BOUND;

/// Lamport's Bakery lock for up to `N` processes.
///
/// ```
/// use bakery_core::{BakeryLock, RawMutexAlgorithm};
///
/// let lock = BakeryLock::new(2);
/// let slot = lock.register().unwrap();
/// let _guard = lock.lock(&slot);
/// ```
#[derive(Debug)]
pub struct BakeryLock {
    file: RegisterFile,
    slots: Arc<SlotAllocator>,
    stats: LockStats,
    waits: WaitHandle,
}

impl BakeryLock {
    /// Creates a Bakery lock for `n` processes with effectively unbounded
    /// (64-bit) ticket registers.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self::with_bound_and_policy(n, DEFAULT_BOUND, OverflowPolicy::Wrap)
    }

    /// Creates a Bakery lock whose ticket registers are bounded by `bound`
    /// and wrap on overflow — the behaviour of real machine registers.
    #[must_use]
    pub fn with_bound(n: usize, bound: u64) -> Self {
        Self::with_bound_and_policy(n, bound, OverflowPolicy::Wrap)
    }

    /// Creates a Bakery lock with an explicit bound and overflow policy (in
    /// the default packed scan mode).
    #[must_use]
    pub fn with_bound_and_policy(n: usize, bound: u64, policy: OverflowPolicy) -> Self {
        Self::with_config(n, bound, policy, ScanMode::Packed)
    }

    /// Creates a Bakery lock with every knob explicit, including the
    /// [`ScanMode`] ([`ScanMode::Padded`] reproduces the seed's per-register
    /// SeqCst scan for baseline measurements and ablations).
    #[must_use]
    pub fn with_config(n: usize, bound: u64, policy: OverflowPolicy, mode: ScanMode) -> Self {
        Self::with_config_and_strategy(n, bound, policy, mode, crate::wait::default_strategy())
    }

    /// Creates a Bakery lock with an explicit [`WaitStrategy`] for its
    /// `L2`/`L3` wait loops (on top of every [`Self::with_config`] knob).
    #[must_use]
    pub fn with_config_and_strategy(
        n: usize,
        bound: u64,
        policy: OverflowPolicy,
        mode: ScanMode,
        strategy: Arc<dyn WaitStrategy>,
    ) -> Self {
        Self {
            file: RegisterFile::with_mode(n, bound, policy, mode),
            slots: SlotAllocator::new(n),
            stats: LockStats::new(),
            waits: WaitHandle::new(strategy),
        }
    }

    /// The scan mode this lock was built with.
    #[must_use]
    pub fn scan_mode(&self) -> ScanMode {
        self.file.mode()
    }

    /// The wait plane this lock's blocking paths run through.
    #[must_use]
    pub fn wait_plane(&self) -> &WaitHandle {
        &self.waits
    }

    /// The shared register file (read-only view used by tests and experiments).
    #[must_use]
    pub fn registers(&self) -> &RegisterFile {
        &self.file
    }

    /// The ticket this process currently holds (0 when idle).
    #[must_use]
    pub fn current_ticket(&self, pid: usize) -> Ticket {
        Ticket::new(self.file.read_number(pid), pid)
    }

    /// Emulates a crash/restart of process `pid` outside its critical section
    /// (paper assumptions 1.5–1.7): both of its registers are reset to zero.
    pub fn crash_reset(&self, pid: usize) {
        self.file.reset_process(pid);
        // Both registers flipped to zero: wake L2 waiters on the choosing
        // word, L3 waiters on the ticket word, and async lock futures.
        self.waits.notify(choosing_site(&self.waits, &self.file, pid));
        self.waits.notify(ticket_site(&self.waits, &self.file, pid));
        self.waits.notify(self.waits.release());
    }

    /// One pass through the doorway: draw the ticket `1 + maximum(...)`.
    ///
    /// The classic algorithm has no guard, so this never blocks and never
    /// resets; the only non-`Ticket` outcome is
    /// [`DoorwayOutcome::Overflowed`] when the register bound is exceeded.
    pub fn try_doorway(&self, pid: usize) -> DoorwayOutcome {
        assert!(pid < self.capacity(), "pid {pid} out of range");
        self.file.write_choosing(pid, true);
        let max = match self.file.packed() {
            Some(packed) => {
                // Handshake fence #1: the `choosing[i] := 1` store must be
                // globally visible before the maximum scan's loads.  Two
                // processes in the doorway simultaneously must not *both*
                // miss each other — the SC-fence pairing with fence #2 / the
                // scan of the other process guarantees at least one side
                // observes the other (the Dekker store-load lemma).
                fence(Ordering::SeqCst); // mem: doorway-dekker.choosing
                packed.max_number()
            }
            // Padded baseline: the seed's per-register SeqCst scan.
            None => TicketOrder::maximum(&self.file.snapshot_numbers()),
        };
        // `max + 1` may exceed the register bound; the register applies the
        // configured policy and records the overflow.  This is the exact
        // failure point the paper's Section 3 identifies.
        let attempted = max.saturating_add(1);
        let event = self.file.write_number(pid, attempted, &self.stats);
        let stored = self.file.read_number(pid);
        self.stats.record_ticket(stored);
        if self.file.packed().is_some() {
            // Handshake fence #2: the ticket store must be visible before
            // this process's L2/L3 loads (including the fast-path emptiness
            // check), pairing with fence #1 of any concurrent chooser.
            fence(Ordering::SeqCst); // mem: doorway-dekker.ticket
        }
        self.file.write_choosing(pid, false);
        // `choosing[i] := 0` releases every L2 waiter watching this word.
        // The ticket store needs no notify: a doorway write only raises a
        // register from zero, which can never flip an L3 wait to "pass".
        self.waits.notify(choosing_site(&self.waits, &self.file, pid));
        match event {
            Some(ev) => DoorwayOutcome::Overflowed {
                attempted: ev.attempted,
                stored: ev.stored,
            },
            None => DoorwayOutcome::Ticket(stored),
        }
    }

    /// The scan (`L2`/`L3`): wait until every other process is done choosing
    /// and no other process holds a smaller `(number, pid)` pair.
    ///
    /// In packed mode an empty-bakery check against the snapshot plane gives
    /// the uncontended **fast path**: when no other process is choosing or
    /// holds a ticket, the whole per-contender loop is skipped after reading
    /// `O(N/8)` words instead of `2N` padded cache lines.
    pub fn await_turn(&self, pid: usize) {
        match self.file.packed() {
            Some(packed) => await_turn_packed(&self.file, packed, pid, &self.stats, &self.waits),
            None => await_turn_padded(&self.file, pid, &self.stats, &self.waits),
        }
    }

    /// Non-blocking check of the scan condition: would process `pid` be
    /// allowed into the critical section right now?
    #[must_use]
    pub fn may_enter(&self, pid: usize) -> bool {
        let me = Ticket::new(self.file.read_number(pid), pid);
        if me.is_idle() {
            return false;
        }
        (0..self.file.len()).all(|j| {
            if j == pid {
                return true;
            }
            if self.file.read_choosing(j) {
                return false;
            }
            let other = Ticket::new(self.file.read_number(j), j);
            !TicketOrder::must_wait_for(me, other)
        })
    }
}

impl RawMutexAlgorithm for BakeryLock {
    fn capacity(&self) -> usize {
        self.file.len()
    }

    fn acquire(&self, pid: usize) {
        let _ = self.try_doorway(pid);
        self.await_turn(pid);
    }

    fn release(&self, pid: usize) {
        self.file.write_number(pid, 0, &self.stats);
        // The zero store flips the L3 predicate of every waiter ordered
        // behind this ticket; the release pulse serves the async futures.
        self.waits.notify(ticket_site(&self.waits, &self.file, pid));
        self.waits.notify(self.waits.release());
    }

    fn try_acquire(&self, pid: usize) -> bool {
        // Draw a ticket, then evaluate the L2/L3 condition once instead of
        // waiting on it.  A failed attempt backs out by resetting the pid's
        // own registers — observationally a doorway crash, which the paper's
        // assumptions 1.5–1.7 explicitly permit.
        let _ = self.try_doorway(pid);
        if self.may_enter(pid) {
            true
        } else {
            self.file.write_number(pid, 0, &self.stats);
            self.waits.notify(ticket_site(&self.waits, &self.file, pid));
            false
        }
    }

    fn crash_abort(&self, pid: usize) -> bool {
        // The paper's crash rule, identical to `crash_reset`: the pid's
        // `choosing`/`number` registers (and packed-mirror lanes) read zero
        // and the restarted process re-enters from its noncritical section.
        self.crash_reset(pid);
        self.stats.record_crash_abort();
        true
    }

    fn algorithm_name(&self) -> &'static str {
        "bakery"
    }

    fn shared_word_count(&self) -> usize {
        // choosing[1..N] and number[1..N]
        2 * self.file.len()
    }

    fn register_bound(&self) -> Option<u64> {
        Some(self.file.bound())
    }

    fn slot_allocator(&self) -> &Arc<SlotAllocator> {
        &self.slots
    }

    fn stats(&self) -> &LockStats {
        &self.stats
    }

    fn wait_handle(&self) -> Option<&WaitHandle> {
        Some(&self.waits)
    }

    fn as_raw(&self) -> &dyn RawMutexAlgorithm {
        self
    }
}

/// The `L2` wait site for `pid`'s choosing register (one packed bitmap word
/// covers 64 pids; padded mode keys per pid).
pub(crate) fn choosing_site(wh: &WaitHandle, file: &RegisterFile, pid: usize) -> WaitSite {
    match file.packed() {
        Some(_) => wh.choosing(pid / 64),
        None => wh.choosing(pid),
    }
}

/// The `L3` wait site for `pid`'s ticket register (packed mode keys per lane
/// word; padded mode per pid).
pub(crate) fn ticket_site(wh: &WaitHandle, file: &RegisterFile, pid: usize) -> WaitSite {
    match file.packed() {
        Some(packed) => wh.ticket(packed.lane_word(pid)),
        None => wh.ticket(pid),
    }
}

/// The `L2`/`L3` scan over the packed snapshot plane, shared by Bakery and
/// Bakery++ (the loops are identical in Algorithms 1 and 2).
///
/// The fast path first reads the choosing bitmap and then the ticket lanes —
/// the same `L2`-before-`L3` order as the per-process loops — and an all-zero
/// observation is exactly the evidence on which every `L2`/`L3` iteration of
/// the classic loop would fall through without waiting, so skipping the loop
/// is behaviourally identical to running it against those reads.
pub(crate) fn await_turn_packed(
    file: &RegisterFile,
    packed: &PackedSnapshot,
    pid: usize,
    stats: &LockStats,
    wh: &WaitHandle,
) {
    if !packed.has_other_contenders(pid) {
        stats.record_fast_path_hit();
        return;
    }
    let n = file.len();
    let mut waits = 0u64;
    for j in 0..n {
        if j == pid {
            continue;
        }
        // Fresh escalation state per watched contender, reset between the L2
        // and L3 predicates — the episode policy the wait contract pins.
        let mut token = WaitToken::new();
        let l2 = wh.choosing(j / 64);
        // L2: wait while process j is choosing (one bitmap word covers 64 js).
        while packed.choosing(j) {
            waits += 1;
            wh.wait(l2, &mut token, &mut || packed.choosing(j));
        }
        token.reset();
        let l3 = wh.ticket(packed.lane_word(j));
        // L3: wait while process j holds a smaller (number, pid) pair.
        loop {
            let me = Ticket::new(packed.number(pid), pid);
            let other = Ticket::new(packed.number(j), j);
            if !TicketOrder::must_wait_for(me, other) {
                break;
            }
            waits += 1;
            wh.wait(l3, &mut token, &mut || {
                let me = Ticket::new(packed.number(pid), pid);
                let other = Ticket::new(packed.number(j), j);
                TicketOrder::must_wait_for(me, other)
            });
        }
    }
    stats.record_doorway_waits(waits);
}

/// The `L2`/`L3` scan against the padded authoritative registers with SeqCst
/// loads — the seed's exact wait loop, kept for [`ScanMode::Padded`].
pub(crate) fn await_turn_padded(file: &RegisterFile, pid: usize, stats: &LockStats, wh: &WaitHandle) {
    let n = file.len();
    let mut waits = 0u64;
    for j in 0..n {
        if j == pid {
            continue;
        }
        // Fresh escalation state per watched contender (see the packed scan).
        let mut token = WaitToken::new();
        let l2 = wh.choosing(j);
        // L2: wait while process j is choosing.
        while file.read_choosing(j) {
            waits += 1;
            wh.wait(l2, &mut token, &mut || file.read_choosing(j));
        }
        token.reset();
        let l3 = wh.ticket(j);
        // L3: wait while process j holds a smaller (number, pid) pair.
        loop {
            let me = Ticket::new(file.read_number(pid), pid);
            let other = Ticket::new(file.read_number(j), j);
            if !TicketOrder::must_wait_for(me, other) {
                break;
            }
            waits += 1;
            wh.wait(l3, &mut token, &mut || {
                let me = Ticket::new(file.read_number(pid), pid);
                let other = Ticket::new(file.read_number(j), j);
                TicketOrder::must_wait_for(me, other)
            });
        }
    }
    stats.record_doorway_waits(waits);
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_process_can_enter_repeatedly() {
        let lock = BakeryLock::new(1);
        let slot = lock.register().unwrap();
        for _ in 0..10 {
            let _g = lock.lock(&slot);
        }
        assert_eq!(lock.stats().cs_entries(), 10);
    }

    #[test]
    fn lone_process_ticket_resets_to_one() {
        let lock = BakeryLock::new(2);
        let a = lock.register_exact(0).unwrap();
        // With nobody else in the bakery the ticket is always 1.
        for _ in 0..5 {
            let g = lock.lock(&a);
            assert_eq!(lock.current_ticket(0).number, 1);
            drop(g);
        }
        assert_eq!(lock.stats().max_ticket(), 1);
    }

    /// The paper §3: two processes alternating their critical sections keep
    /// at least one non-zero ticket in the bakery at all times, so the ticket
    /// value grows without bound.  Replayed deterministically through the
    /// split doorway/scan API.
    #[test]
    fn alternating_processes_grow_tickets_without_bound() {
        let lock = BakeryLock::new(2);
        let mut last = 0u64;
        // A takes a ticket first.
        assert_eq!(lock.try_doorway(0), DoorwayOutcome::Ticket(1));
        for round in 0..100 {
            // The other process takes its ticket while the first still holds
            // one, then the first releases and re-enters the bakery, and so on.
            let (leaving, entering) = if round % 2 == 0 { (0, 1) } else { (1, 0) };
            let outcome = lock.try_doorway(entering);
            let DoorwayOutcome::Ticket(number) = outcome else {
                panic!("unbounded bakery never overflows, got {outcome:?}");
            };
            assert!(number > last, "ticket values must keep growing");
            last = number;
            lock.await_turn(leaving);
            lock.release(leaving);
        }
        assert!(lock.stats().max_ticket() >= 100);
        assert_eq!(lock.stats().overflow_attempts(), 0);
    }

    /// The same alternation on bounded registers overflows (§3): the classic
    /// algorithm has no defence.
    #[test]
    fn alternating_processes_overflow_bounded_registers() {
        let bound = 5;
        let lock = BakeryLock::with_bound(2, bound);
        assert!(lock.try_doorway(0).took_ticket());
        let mut saw_overflow = false;
        for round in 0..50 {
            let (leaving, entering) = if round % 2 == 0 { (0, 1) } else { (1, 0) };
            if let DoorwayOutcome::Overflowed { attempted, stored } = lock.try_doorway(entering) {
                assert!(attempted > bound);
                assert!(stored <= bound);
                saw_overflow = true;
                break;
            }
            lock.release(leaving);
        }
        assert!(saw_overflow, "bounded classic Bakery must overflow");
        assert!(lock.stats().overflow_attempts() > 0);
    }

    /// After a wrap-around the overflowed process can overtake a process with
    /// a (numerically larger) older ticket — the FIFO order the paper
    /// advertises is broken, which is the root of the §3 malfunction.
    #[test]
    fn wrapped_ticket_overtakes_older_ticket() {
        let lock = BakeryLock::with_bound(2, 3);
        // Process 0 legitimately holds the maximum ticket value.
        assert!(lock.try_doorway(0).took_ticket()); // ticket 1
        lock.release(0);
        lock.file.write_number(0, 3, &lock.stats); // simulate an old ticket at M
        // Process 1 draws next: 1 + 3 = 4 > M, wraps to 0 or a small value.
        let outcome = lock.try_doorway(1);
        let DoorwayOutcome::Overflowed { stored, .. } = outcome else {
            panic!("expected an overflow, got {outcome:?}");
        };
        // The wrapped value is smaller than the older ticket, so process 1 now
        // (incorrectly) believes it has priority whenever stored is non-zero,
        // or is treated as idle when stored == 0 — either way FCFS is lost.
        assert!(stored < 3);
        lock.crash_reset(0);
        lock.crash_reset(1);
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        let lock = Arc::new(BakeryLock::new(4));
        let counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let in_cs = Arc::new(std::sync::atomic::AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                let in_cs = Arc::clone(&in_cs);
                scope.spawn(move || {
                    let slot = lock.register().unwrap();
                    for _ in 0..500 {
                        let _g = lock.lock(&slot);
                        let inside = in_cs.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        assert_eq!(inside, 0, "two processes inside the critical section");
                        counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        in_cs.fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(counter.load(std::sync::atomic::Ordering::SeqCst), 2000);
        assert_eq!(lock.stats().cs_entries(), 2000);
    }

    #[test]
    fn crash_reset_unblocks_other_processes() {
        let lock = BakeryLock::new(2);
        let a = lock.register_exact(0).unwrap();
        // Simulate process 1 crashing mid-doorway with choosing set: reads of
        // a crashed process eventually return zero (assumption 1.7), which we
        // model by resetting its registers.
        lock.file.write_choosing(1, true);
        lock.crash_reset(1);
        let _g = lock.lock(&a); // must not hang on choosing[1]
    }

    #[test]
    fn may_enter_reflects_ticket_priority() {
        let lock = BakeryLock::new(2);
        assert!(!lock.may_enter(0), "idle process may not enter");
        assert!(lock.try_doorway(0).took_ticket());
        assert!(lock.try_doorway(1).took_ticket());
        assert!(lock.may_enter(0), "older ticket has priority");
        assert!(!lock.may_enter(1), "younger ticket must wait");
        lock.release(0);
        assert!(lock.may_enter(1));
        lock.release(1);
    }

    #[test]
    fn metadata_accessors() {
        let lock = BakeryLock::with_bound(3, 7);
        assert_eq!(lock.capacity(), 3);
        assert_eq!(lock.algorithm_name(), "bakery");
        assert_eq!(lock.shared_word_count(), 6);
        assert_eq!(lock.register_bound(), Some(7));
        assert_eq!(lock.registers().bound(), 7);
    }

    #[test]
    fn uncontended_acquires_take_the_fast_path() {
        let lock = BakeryLock::new(4);
        assert_eq!(lock.scan_mode(), ScanMode::Packed);
        let slot = lock.register().unwrap();
        for _ in 0..25 {
            let _g = lock.lock(&slot);
        }
        assert_eq!(lock.stats().fast_path_hits(), 25, "empty bakery every time");
        assert_eq!(lock.stats().doorway_waits(), 0);
    }

    #[test]
    fn fast_path_is_skipped_while_another_ticket_is_live() {
        let lock = BakeryLock::new(2);
        assert!(lock.try_doorway(1).took_ticket()); // standing customer
        assert!(lock.try_doorway(0).took_ticket());
        lock.await_turn(1); // pid 1 has the older ticket: enters first
        assert_eq!(lock.stats().fast_path_hits(), 0);
        lock.release(1);
        lock.await_turn(0);
        lock.release(0);
    }

    #[test]
    fn padded_mode_reproduces_seed_behaviour() {
        let lock = BakeryLock::with_config(2, 5, OverflowPolicy::Wrap, ScanMode::Padded);
        assert_eq!(lock.scan_mode(), ScanMode::Padded);
        assert!(lock.registers().packed().is_none());
        let slot = lock.register().unwrap();
        for _ in 0..10 {
            let _g = lock.lock(&slot);
        }
        assert_eq!(lock.stats().cs_entries(), 10);
        assert_eq!(lock.stats().fast_path_hits(), 0, "padded mode has no fast path");
    }

    #[test]
    fn padded_mode_mutual_exclusion_under_contention() {
        let lock = Arc::new(BakeryLock::with_config(
            4,
            crate::DEFAULT_BOUND,
            OverflowPolicy::Wrap,
            ScanMode::Padded,
        ));
        let in_cs = Arc::new(std::sync::atomic::AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let lock = Arc::clone(&lock);
                let in_cs = Arc::clone(&in_cs);
                scope.spawn(move || {
                    let slot = lock.register().unwrap();
                    for _ in 0..300 {
                        let _g = lock.lock(&slot);
                        let inside = in_cs.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        assert_eq!(inside, 0, "mutual exclusion violated");
                        in_cs.fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(lock.stats().cs_entries(), 1200);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn acquire_rejects_out_of_range_pid() {
        let lock = BakeryLock::new(2);
        lock.acquire(5);
    }

    #[test]
    #[should_panic(expected = "different lock instance")]
    fn foreign_slot_is_rejected() {
        let lock_a = BakeryLock::new(2);
        let lock_b = BakeryLock::new(2);
        let slot_b = lock_b.register().unwrap();
        let _ = lock_a.lock(&slot_b);
    }
}
