//! RAII critical-section guards.
//!
//! A [`CriticalSectionGuard`] represents "this thread is currently inside the
//! critical section as process `pid`".  Dropping the guard executes the
//! algorithm's exit protocol (`number[i] := 0` for the Bakery family), so the
//! critical section can never be left open accidentally — including on panic
//! unwinds, which matches the paper's assumption 1.5 that a process failing
//! inside its critical section resets its shared registers.

use std::fmt;

use crate::raw::RawMutexAlgorithm;

/// A held critical section; releases the lock when dropped.
pub struct CriticalSectionGuard<'a> {
    lock: &'a dyn RawMutexAlgorithm,
    pid: usize,
}

impl<'a> CriticalSectionGuard<'a> {
    /// Builds a guard for a critical section that has already been entered.
    ///
    /// This is only called from [`crate::raw::RawMutexAlgorithm::checked_lock`]
    /// after a successful `acquire`.
    #[must_use]
    pub(crate) fn new(lock: &'a dyn RawMutexAlgorithm, pid: usize) -> Self {
        Self { lock, pid }
    }

    /// The process id holding the critical section.
    #[must_use]
    pub fn pid(&self) -> usize {
        self.pid
    }

    /// The algorithm name of the lock being held (for diagnostics).
    #[must_use]
    pub fn algorithm_name(&self) -> &'static str {
        self.lock.algorithm_name()
    }
}

impl fmt::Debug for CriticalSectionGuard<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CriticalSectionGuard")
            .field("pid", &self.pid)
            .field("algorithm", &self.lock.algorithm_name())
            .finish()
    }
}

impl Drop for CriticalSectionGuard<'_> {
    fn drop(&mut self) {
        self.lock.release(self.pid);
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use crate::prelude::*;

    #[test]
    fn guard_reports_pid_and_algorithm() {
        let lock = BakeryPlusPlusLock::with_bound(2, 100);
        let slot = lock.register().unwrap();
        let guard = lock.lock(&slot);
        assert_eq!(guard.pid(), 0);
        assert_eq!(guard.algorithm_name(), "bakery++");
        assert!(format!("{guard:?}").contains("bakery++"));
    }

    #[test]
    fn dropping_the_guard_releases_the_lock() {
        let lock = BakeryPlusPlusLock::with_bound(2, 100);
        let slot = lock.register().unwrap();
        drop(lock.lock(&slot));
        // Re-acquiring immediately must not deadlock.
        drop(lock.lock(&slot));
    }

    #[test]
    fn guard_released_on_panic_unwind() {
        let lock = BakeryPlusPlusLock::with_bound(2, 100);
        let slot = lock.register().unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = lock.lock(&slot);
            panic!("simulated failure inside the critical section");
        }));
        assert!(result.is_err());
        // The exit protocol ran during unwinding, so this does not deadlock.
        drop(lock.lock(&slot));
    }
}
