//! Pluggable wait strategies: the one place every busy-wait in the suite
//! parks, yields or spins.
//!
//! The Bakery family is specified entirely in terms of busy-waiting on
//! single-writer registers (the paper's `L1`/`L2`/`L3` loops), and so are the
//! layers built on top of it — the session plane's attach loop, the adaptive
//! lock's drain helpers, the baseline locks.  How a waiter passes the time
//! while its predicate is false is *not* part of any of those protocols, so
//! this module factors it out behind [`WaitStrategy`]:
//!
//! * [`Spin`] — the historical behaviour: exponential spin-then-yield via
//!   [`Backoff`].  The baseline every benchmark compares against.
//! * [`Yield`] — yield to the OS scheduler on every round.  The polite
//!   oversubscription strategy when parking is unavailable.
//! * [`Park`] — a futex-style waiter table: after a short spin phase the
//!   waiter registers itself under the [`WaitSite`] it is watching and parks
//!   its thread (or records its [`Waker`]); the writer whose store flips the
//!   predicate wakes exactly the waiters registered on that site.
//!
//! # The contract
//!
//! A *wait site* names a predicate source — a packed-snapshot word, the
//! session plane's free-seat set, a lock's release pulse.  A *wait episode*
//! is one predicate watched by one waiter until it flips; its escalation
//! state lives in a [`WaitToken`].
//!
//! 1. **Spurious wakeups are allowed.**  `wait` may return at any time, with
//!    the predicate still false; callers must always loop.
//! 2. **Lost wakeups are forbidden.**  If a writer flips the predicate and
//!    then calls [`WaitStrategy::notify`] on the site, every waiter already
//!    blocked in [`WaitStrategy::wait`] on that site must return.  [`Park`]
//!    implements this with a register → *revalidate predicate* → park
//!    handshake: the waiter enqueues itself, re-evaluates the predicate
//!    (`still_waiting`), and only then parks — paired with a store-load
//!    `SeqCst` fence on the notify side, at least one side always observes
//!    the other, closing the check-then-park race.
//! 3. **Episode policy** (pinned by the conformance suite): escalation state
//!    is **fresh per watched predicate** — the `L2`/`L3` scans create a new
//!    [`WaitToken`] per contender `j` and [`WaitToken::reset`] it between the
//!    `L2` and `L3` loops, so escalation never leaks between unrelated
//!    waits.  The one exception is Bakery++'s `L1`/`Reset` retry loop, which
//!    is a single episode (the same admission predicate) and carries one
//!    token across doorway retries.
//! 4. **Un-notified sites rely on [`Park`]'s bounded park timeout.**  The
//!    baseline locks route their waits through the strategy but do not
//!    instrument their release stores with notifies; under [`Park`] those
//!    waiters degrade to a bounded-interval poll instead of hanging.
//!
//! The wait policy is deliberately identical across algorithms so that the
//! throughput comparisons in experiment **E7** measure the protocols, not the
//! waiting strategy: a strategy changes *scheduling*, never protocol
//! outcomes, which the conformance suite checks by replaying the same
//! workload under all three strategies.

use std::fmt;
use crate::sync::{fence, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::task::Waker;
use std::thread::{self, Thread};
use std::time::Duration;

use crate::backoff::Backoff;

/// What kind of predicate a [`WaitSite`] names.  Part of the site key, so
/// waiters on different planes of the same lock never alias.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteKind {
    /// An `L2` wait on a choosing word (packed: one bitmap word covers 64
    /// pids; padded: one site per pid).
    Choosing,
    /// An `L3` wait on a ticket lane word (packed: one site per lane word;
    /// padded: one site per pid).
    Ticket,
    /// A guard/phase predicate: Bakery++'s `L1` admission guard, the adaptive
    /// lock's drain phases, the session plane's busy-seat waits.
    Guard,
    /// The session plane's free-seat predicate (woken on detach/recycle).
    Attach,
    /// A lock-wide release pulse, used by the async lock futures.
    Release,
}

/// One wait site: `(namespace, kind, index)`.
///
/// The namespace isolates lock instances from each other (every
/// [`WaitHandle`] draws a fresh one), the kind isolates planes within a lock,
/// and the index addresses a word within the plane.  Key collisions across
/// sites would only cause spurious wakeups, which the contract permits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitSite {
    /// Instance namespace (see [`new_namespace`]).
    pub ns: u64,
    /// The plane within the instance.
    pub kind: SiteKind,
    /// Word index within the plane.
    pub index: usize,
}

impl WaitSite {
    /// Mixes the site into one `u64` key (FNV-1a over the three fields).
    #[must_use]
    pub fn key(self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for v in [self.ns, self.kind as u64, self.index as u64] {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Per-episode escalation state, owned by the waiter.
///
/// Wraps the classic [`Backoff`] and counts how often the episode actually
/// parked, so tests can assert that a parked waiter wastes a bounded number
/// of rounds where a spinner would burn millions.
#[derive(Debug, Default)]
pub struct WaitToken {
    backoff: Backoff,
    parks: u64,
}

impl WaitToken {
    /// A fresh token in the "not yet waited" state.
    #[must_use]
    pub fn new() -> Self {
        Self {
            backoff: Backoff::new(),
            parks: 0,
        }
    }

    /// Rounds waited since creation or the last [`WaitToken::reset`].
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.backoff.rounds()
    }

    /// Times this episode actually parked its thread.
    #[must_use]
    pub fn parks(&self) -> u64 {
        self.parks
    }

    /// True once the episode has escalated past pure spinning.
    #[must_use]
    pub fn is_yielding(&self) -> bool {
        self.backoff.is_yielding()
    }

    /// One spin/yield round (strategy implementations call this).
    pub fn snooze(&mut self) {
        self.backoff.snooze();
    }

    /// Re-arms the episode after progress (e.g. between the `L2` and `L3`
    /// loops of one contender): escalation and round count restart.
    pub fn reset(&mut self) {
        self.backoff.reset();
    }

    /// Records one park (strategy implementations call this).
    pub fn note_park(&mut self) {
        self.parks += 1;
    }
}

/// A pluggable waiting discipline (see the module docs for the contract).
///
/// Implementations must be cheap to share: one instance typically serves a
/// whole lock (or a whole tree of locks) behind an `Arc`.
pub trait WaitStrategy: Send + Sync + fmt::Debug {
    /// Short name for reports ("spin", "yield", "park").
    fn name(&self) -> &'static str;

    /// One blocking round of the episode `token` on `site`.
    ///
    /// Called by a waiter that has just observed its predicate false.
    /// `still_waiting` re-evaluates the predicate (`true` = keep waiting);
    /// parking strategies call it *after* registering, which is what makes a
    /// lost wakeup impossible.  May return spuriously.
    fn wait(&self, site: WaitSite, token: &mut WaitToken, still_waiting: &mut dyn FnMut() -> bool);

    /// Wakes every waiter registered on `site`.  Called by the writer whose
    /// store flipped the site's predicate, *after* the store.
    fn notify(&self, site: WaitSite);

    /// Wakes at most `n` waiters registered on `site` (storm control for the
    /// session plane's attach site).  Defaults to [`WaitStrategy::notify`].
    fn notify_some(&self, site: WaitSite, n: usize) {
        let _ = n;
        self.notify(site);
    }

    /// Registers an async task's `waker` on `site`.
    ///
    /// Returns `true` when the waker is registered and the predicate was
    /// still true after registration (the future should return `Pending`);
    /// `false` when the predicate flipped during registration (the future
    /// should retry immediately — the registration, if any, was withdrawn or
    /// will be consumed as a harmless spurious wake).  The default busy
    /// re-polls: it wakes the task immediately, giving spin semantics.
    fn register_waker(
        &self,
        site: WaitSite,
        waker: &Waker,
        still_waiting: &mut dyn FnMut() -> bool,
    ) -> bool {
        let _ = site;
        let _ = still_waiting;
        waker.wake_by_ref();
        true
    }
}

/// The historical spin-then-yield behaviour ([`Backoff`]), as a strategy.
#[derive(Debug, Default, Clone, Copy)]
pub struct Spin;

impl WaitStrategy for Spin {
    fn name(&self) -> &'static str {
        "spin"
    }

    fn wait(
        &self,
        _site: WaitSite,
        token: &mut WaitToken,
        _still_waiting: &mut dyn FnMut() -> bool,
    ) {
        token.snooze();
    }

    fn notify(&self, _site: WaitSite) {}
}

/// Yield to the OS scheduler on every round.
#[derive(Debug, Default, Clone, Copy)]
pub struct Yield;

impl WaitStrategy for Yield {
    fn name(&self) -> &'static str {
        "yield"
    }

    fn wait(
        &self,
        _site: WaitSite,
        token: &mut WaitToken,
        _still_waiting: &mut dyn FnMut() -> bool,
    ) {
        // Count the round, then always hand the timeslice back.
        token.snooze();
        std::thread::yield_now();
    }

    fn notify(&self, _site: WaitSite) {}
}

/// One registered waiter: either a parked thread or an async task.
#[derive(Debug)]
enum Handle {
    Thread(Thread),
    Task(Waker),
}

#[derive(Debug)]
struct Entry {
    key: u64,
    id: u64,
    handle: Handle,
}

const PARK_SHARDS: usize = 16;

/// Futex-style parking: waiters register under their site key and park;
/// notifiers drain and wake exactly the waiters registered on the flipped
/// site.
///
/// The missed-wakeup race (predicate flips between the waiter's check and
/// its park) is closed by the register → revalidate → park handshake on the
/// wait side and a `SeqCst` store-load fence pairing with the notify side:
/// the waiter publishes its registration (`SeqCst` counter increment), fences
/// and re-reads the predicate; the notifier flips the predicate, fences and
/// reads the counter.  In the SC order at least one side observes the other,
/// so either the waiter sees the flip and never parks, or the notifier sees
/// the registration and wakes it.
///
/// Every park uses a bounded timeout (default 1 ms, see [`Park::with_timeout`])
/// as a safety net for sites whose writers do not notify (the baseline
/// locks): waiters there degrade to a bounded-interval poll.  Timeouts and
/// spurious unparks surface as spurious wakeups, which the contract permits.
#[derive(Debug)]
pub struct Park {
    shards: [Mutex<Vec<Entry>>; PARK_SHARDS],
    /// Registered-waiter count, the notify fast path ("no waiters anywhere,
    /// skip the lock").  `SeqCst` so it participates in the Dekker pairing.
    registered: AtomicUsize,
    next_id: AtomicU64,
    timeout: Option<Duration>,
    parks: AtomicU64,
    notifies: AtomicU64,
    timeouts: AtomicU64,
    wait_calls: AtomicU64,
}

impl Default for Park {
    fn default() -> Self {
        Self::new()
    }
}

impl Park {
    /// A parking strategy with the default 1 ms park-timeout safety net.
    #[must_use]
    pub fn new() -> Self {
        Self::with_timeout(Some(Duration::from_millis(1)))
    }

    /// A parking strategy with an explicit park timeout.
    ///
    /// `None` parks unboundedly — liveness then depends entirely on notifies,
    /// which is exactly what the loom lost-wakeup tests want (a lost wakeup
    /// hangs instead of being papered over by the timeout).  Production
    /// configurations should keep a timeout unless every wait site in the
    /// deployment is known to be notified.
    #[must_use]
    pub fn with_timeout(timeout: Option<Duration>) -> Self {
        Self {
            shards: std::array::from_fn(|_| Mutex::new(Vec::new())),
            registered: AtomicUsize::new(0),
            next_id: AtomicU64::new(1),
            timeout,
            parks: AtomicU64::new(0),
            notifies: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            wait_calls: AtomicU64::new(0),
        }
    }

    /// Times a waiter actually parked its thread.
    #[must_use]
    pub fn parks(&self) -> u64 {
        self.parks.load(Ordering::Relaxed) // mem: stats-relaxed
    }

    /// Waiters woken by a notify (threads unparked + wakers woken).
    #[must_use]
    pub fn notifies(&self) -> u64 {
        self.notifies.load(Ordering::Relaxed) // mem: stats-relaxed
    }

    /// Parks that ended by timeout or spurious unpark (entry still queued).
    #[must_use]
    pub fn timeouts(&self) -> u64 {
        self.timeouts.load(Ordering::Relaxed) // mem: stats-relaxed
    }

    /// Total [`WaitStrategy::wait`] rounds served — the "wasted rounds"
    /// metric the oversubscription regression test bounds.
    #[must_use]
    pub fn wait_calls(&self) -> u64 {
        self.wait_calls.load(Ordering::Relaxed) // mem: stats-relaxed
    }

    fn shard(&self, key: u64) -> &Mutex<Vec<Entry>> {
        &self.shards[(key as usize) % PARK_SHARDS]
    }

    /// Enqueues a waiter handle under `key` and publishes the registration.
    fn enlist(&self, key: u64, handle: Handle) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed); // mem: id-alloc
        self.shard(key)
            .lock()
            .expect("park shard poisoned")
            .push(Entry { key, id, handle });
        self.registered.fetch_add(1, Ordering::SeqCst); // mem: park-handshake.waiter
        id
    }

    /// Withdraws a registration; `true` when the entry was still queued
    /// (i.e. no notify consumed it).
    fn delist(&self, key: u64, id: u64) -> bool {
        let mut shard = self.shard(key).lock().expect("park shard poisoned");
        if let Some(pos) = shard.iter().position(|e| e.id == id) {
            shard.swap_remove(pos);
            drop(shard);
            self.registered.fetch_sub(1, Ordering::SeqCst); // mem: park-handshake.waiter
            true
        } else {
            false
        }
    }
}

impl WaitStrategy for Park {
    fn name(&self) -> &'static str {
        "park"
    }

    fn wait(&self, site: WaitSite, token: &mut WaitToken, still_waiting: &mut dyn FnMut() -> bool) {
        self.wait_calls.fetch_add(1, Ordering::Relaxed); // mem: stats-relaxed
        if !token.is_yielding() {
            // Short spin phase: a predicate about to flip is cheaper to catch
            // without a round trip through the waiter table.
            token.snooze();
            return;
        }
        token.snooze();
        let key = site.key();
        let id = self.enlist(key, Handle::Thread(thread::current()));
        // The handshake: registration is published (SeqCst RMW), now re-read
        // the predicate.  A notifier that missed our registration must have
        // read `registered` before our increment, which orders its predicate
        // flip before this re-read — we see it and never park.
        fence(Ordering::SeqCst); // mem: park-handshake.waiter
        if !still_waiting() {
            self.delist(key, id);
            return;
        }
        token.note_park();
        self.parks.fetch_add(1, Ordering::Relaxed); // mem: stats-relaxed
        match self.timeout {
            Some(limit) => thread::park_timeout(limit),
            None => thread::park(),
        }
        if self.delist(key, id) {
            // Nobody consumed the entry: we woke by timeout or spuriously.
            self.timeouts.fetch_add(1, Ordering::Relaxed); // mem: stats-relaxed
        }
    }

    fn notify(&self, site: WaitSite) {
        self.notify_some(site, usize::MAX);
    }

    fn notify_some(&self, site: WaitSite, n: usize) {
        // Pairs with the waiter-side fence in `wait`/`register_waker`.
        fence(Ordering::SeqCst); // mem: park-handshake.notifier
        if self.registered.load(Ordering::SeqCst) == 0 { // mem: park-handshake.notifier
            return;
        }
        let key = site.key();
        let mut woken: Vec<Entry> = Vec::new();
        {
            let mut shard = self.shard(key).lock().expect("park shard poisoned");
            let mut i = 0;
            while i < shard.len() && woken.len() < n {
                if shard[i].key == key {
                    woken.push(shard.swap_remove(i));
                } else {
                    i += 1;
                }
            }
        }
        if woken.is_empty() {
            return;
        }
        self.registered.fetch_sub(woken.len(), Ordering::SeqCst); // mem: park-handshake.notifier
        self.notifies.fetch_add(woken.len() as u64, Ordering::Relaxed); // mem: stats-relaxed
        for entry in woken {
            match entry.handle {
                Handle::Thread(t) => t.unpark(),
                Handle::Task(w) => w.wake(),
            }
        }
    }

    fn register_waker(
        &self,
        site: WaitSite,
        waker: &Waker,
        still_waiting: &mut dyn FnMut() -> bool,
    ) -> bool {
        let key = site.key();
        let id = self.enlist(key, Handle::Task(waker.clone()));
        // Same handshake as the thread path: publish, fence, revalidate.
        fence(Ordering::SeqCst); // mem: park-handshake.waiter
        if !still_waiting() {
            self.delist(key, id);
            return false;
        }
        true
    }
}

/// A strategy bound to an instance namespace — what the locks actually hold.
///
/// Cloning shares the strategy *and* the namespace (a cloned handle addresses
/// the same sites); [`WaitHandle::new`] draws a fresh namespace.
#[derive(Debug, Clone)]
pub struct WaitHandle {
    strategy: Arc<dyn WaitStrategy>,
    ns: u64,
}

impl WaitHandle {
    /// Binds `strategy` to a fresh namespace.
    #[must_use]
    pub fn new(strategy: Arc<dyn WaitStrategy>) -> Self {
        Self {
            strategy,
            ns: new_namespace(),
        }
    }

    /// A handle over the process-wide default strategy (see
    /// [`default_strategy`]), in a fresh namespace.
    #[must_use]
    pub fn default_handle() -> Self {
        Self::new(default_strategy())
    }

    /// The underlying strategy.
    #[must_use]
    pub fn strategy(&self) -> &Arc<dyn WaitStrategy> {
        &self.strategy
    }

    /// This handle's namespace.
    #[must_use]
    pub fn namespace(&self) -> u64 {
        self.ns
    }

    /// The `L2` site for choosing word `word`.
    #[must_use]
    pub fn choosing(&self, word: usize) -> WaitSite {
        WaitSite {
            ns: self.ns,
            kind: SiteKind::Choosing,
            index: word,
        }
    }

    /// The `L3` site for ticket lane word `word`.
    #[must_use]
    pub fn ticket(&self, word: usize) -> WaitSite {
        WaitSite {
            ns: self.ns,
            kind: SiteKind::Ticket,
            index: word,
        }
    }

    /// The instance-wide guard/phase site.
    #[must_use]
    pub fn guard(&self) -> WaitSite {
        WaitSite {
            ns: self.ns,
            kind: SiteKind::Guard,
            index: 0,
        }
    }

    /// The session plane's free-seat site.
    #[must_use]
    pub fn attach(&self) -> WaitSite {
        WaitSite {
            ns: self.ns,
            kind: SiteKind::Attach,
            index: 0,
        }
    }

    /// The instance-wide release pulse site.
    #[must_use]
    pub fn release(&self) -> WaitSite {
        WaitSite {
            ns: self.ns,
            kind: SiteKind::Release,
            index: 0,
        }
    }

    /// Forwards to [`WaitStrategy::wait`].
    pub fn wait(
        &self,
        site: WaitSite,
        token: &mut WaitToken,
        still_waiting: &mut dyn FnMut() -> bool,
    ) {
        self.strategy.wait(site, token, still_waiting);
    }

    /// Forwards to [`WaitStrategy::notify`].
    pub fn notify(&self, site: WaitSite) {
        self.strategy.notify(site);
    }

    /// Forwards to [`WaitStrategy::notify_some`].
    pub fn notify_some(&self, site: WaitSite, n: usize) {
        self.strategy.notify_some(site, n);
    }

    /// Forwards to [`WaitStrategy::register_waker`].
    pub fn register_waker(
        &self,
        site: WaitSite,
        waker: &Waker,
        still_waiting: &mut dyn FnMut() -> bool,
    ) -> bool {
        self.strategy.register_waker(site, waker, still_waiting)
    }
}

/// Draws a fresh site namespace (process-wide counter).
#[must_use]
pub fn new_namespace() -> u64 {
    static NAMESPACE: AtomicU64 = AtomicU64::new(1);
    NAMESPACE.fetch_add(1, Ordering::Relaxed) // mem: id-alloc
}

/// Builds a strategy by name: `"spin"`, `"yield"` or `"park"`.
#[must_use]
pub fn strategy_by_name(name: &str) -> Option<Arc<dyn WaitStrategy>> {
    match name.to_ascii_lowercase().as_str() {
        "spin" => Some(Arc::new(Spin)),
        "yield" => Some(Arc::new(Yield)),
        "park" => Some(Arc::new(Park::new())),
        _ => None,
    }
}

/// The process-wide default strategy, chosen once from the
/// `BAKERY_WAIT_STRATEGY` environment variable (`spin` | `yield` | `park`,
/// default `spin` — the historical behaviour, so existing benchmarks are
/// unchanged unless asked).
#[must_use]
pub fn default_strategy() -> Arc<dyn WaitStrategy> {
    static DEFAULT: OnceLock<Arc<dyn WaitStrategy>> = OnceLock::new();
    Arc::clone(DEFAULT.get_or_init(|| {
        std::env::var("BAKERY_WAIT_STRATEGY")
            .ok()
            .and_then(|name| strategy_by_name(&name))
            .unwrap_or_else(|| Arc::new(Spin))
    }))
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    fn flag_site(h: &WaitHandle) -> WaitSite {
        h.guard()
    }

    fn wait_for_flag(h: &WaitHandle, flag: &AtomicBool) -> WaitToken {
        let site = flag_site(h);
        let mut token = WaitToken::new();
        while !flag.load(Ordering::SeqCst) {
            h.wait(site, &mut token, &mut || !flag.load(Ordering::SeqCst));
        }
        token
    }

    #[test]
    fn spin_and_yield_complete_a_wait() {
        for strategy in [strategy_by_name("spin").unwrap(), strategy_by_name("yield").unwrap()] {
            let h = WaitHandle::new(strategy);
            let flag = AtomicBool::new(false);
            std::thread::scope(|s| {
                s.spawn(|| {
                    std::thread::sleep(Duration::from_millis(5));
                    flag.store(true, Ordering::SeqCst);
                    h.notify(flag_site(&h));
                });
                let token = wait_for_flag(&h, &flag);
                assert!(token.rounds() > 0);
            });
        }
    }

    #[test]
    fn park_wakes_on_notify_with_bounded_rounds() {
        let park = Arc::new(Park::new());
        let h = WaitHandle::new(Arc::clone(&park) as Arc<dyn WaitStrategy>);
        let flag = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(Duration::from_millis(50));
                flag.store(true, Ordering::SeqCst);
                h.notify(flag_site(&h));
            });
            let token = wait_for_flag(&h, &flag);
            // A spinner would burn hundreds of thousands of rounds over
            // 50 ms; a parked waiter spends a handful (the spin phase plus
            // one round per 1 ms timeout tick at worst).
            assert!(token.rounds() < 1_000, "wasted {} rounds", token.rounds());
            assert!(token.parks() >= 1, "the waiter never parked");
        });
        assert!(park.parks() >= 1);
    }

    #[test]
    fn park_timeout_rescues_an_unnotified_site() {
        // The writer flips the flag but never notifies (a baseline-lock
        // release): the bounded park timeout must still let the waiter out.
        let h = WaitHandle::new(Arc::new(Park::new()) as Arc<dyn WaitStrategy>);
        let flag = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(Duration::from_millis(5));
                flag.store(true, Ordering::SeqCst);
            });
            let token = wait_for_flag(&h, &flag);
            assert!(token.rounds() > 0);
        });
    }

    #[test]
    fn notify_some_wakes_at_most_n() {
        let park = Arc::new(Park::with_timeout(None));
        let h = WaitHandle::new(Arc::clone(&park) as Arc<dyn WaitStrategy>);
        let released = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let site = flag_site(&h);
                    let mut token = WaitToken::new();
                    while !stop.load(Ordering::SeqCst) {
                        h.wait(site, &mut token, &mut || !stop.load(Ordering::SeqCst));
                    }
                    released.fetch_add(1, Ordering::SeqCst);
                });
            }
            // Wait until all four are actually parked.
            while park.parks() < 4 {
                std::thread::yield_now();
            }
            // A bounded wake of 2 must not release more than 2 (the flag is
            // still false, so the two woken waiters re-park).
            h.notify_some(flag_site(&h), 2);
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(released.load(Ordering::SeqCst), 0);
            stop.store(true, Ordering::SeqCst);
            h.notify(flag_site(&h));
            // Late re-parkers race the broadcast; keep nudging until all out.
            while released.load(Ordering::SeqCst) < 4 {
                h.notify(flag_site(&h));
                std::thread::yield_now();
            }
        });
        assert!(park.notifies() >= 4);
    }

    #[test]
    fn site_keys_separate_planes_and_namespaces() {
        let a = WaitHandle::new(Arc::new(Spin) as Arc<dyn WaitStrategy>);
        let b = WaitHandle::new(Arc::new(Spin) as Arc<dyn WaitStrategy>);
        assert_ne!(a.namespace(), b.namespace());
        assert_ne!(a.choosing(0).key(), a.ticket(0).key());
        assert_ne!(a.guard().key(), a.attach().key());
        assert_ne!(a.choosing(0).key(), b.choosing(0).key());
        assert_eq!(a.choosing(3).key(), a.choosing(3).key());
    }

    #[test]
    fn strategy_names_round_trip() {
        for name in ["spin", "yield", "park"] {
            assert_eq!(strategy_by_name(name).unwrap().name(), name);
        }
        assert!(strategy_by_name("nope").is_none());
        assert!(["spin", "yield", "park"].contains(&default_strategy().name()));
    }

    #[test]
    fn default_register_waker_busy_repolls() {
        // Spin's default async path wakes the task immediately.
        use std::sync::Arc as StdArc;
        use std::task::Wake;
        struct Flag(AtomicBool);
        impl Wake for Flag {
            fn wake(self: StdArc<Self>) {
                self.0.store(true, Ordering::SeqCst);
            }
        }
        let flag = StdArc::new(Flag(AtomicBool::new(false)));
        let waker = Waker::from(StdArc::clone(&flag));
        let spin = Spin;
        assert!(spin.register_waker(
            WaitHandle::new(Arc::new(Spin)).guard(),
            &waker,
            &mut || true
        ));
        assert!(flag.0.load(Ordering::SeqCst), "spin must busy re-poll");
    }
}
