//! Ticket values and the Bakery ordering relation.
//!
//! The Bakery algorithm orders waiting processes by the pair
//! `(number[i], i)` using the lexicographic relation the paper defines for its
//! `<` operator: `(a, b) < (c, d)` iff `a < c`, or `a = c` and `b < d`.
//! This module provides that ordering as a first-class type so the real locks,
//! the model-checkable specifications and the experiment harness all share a
//! single, well-tested definition.

use std::cmp::Ordering as CmpOrdering;
use std::fmt;

/// A ticket drawn in the doorway: the pair `(number, pid)`.
///
/// `number == 0` means "no ticket held" exactly as in the paper; the pid is
/// carried along so ties between equal numbers are broken deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ticket {
    /// The value read from / written to `number[pid]`.
    pub number: u64,
    /// The process id owning the ticket (index into the register arrays).
    pub pid: usize,
}

impl Ticket {
    /// Creates a ticket for process `pid` with the given `number`.
    #[must_use]
    pub fn new(number: u64, pid: usize) -> Self {
        Self { number, pid }
    }

    /// The "no ticket" value for process `pid` (`number == 0`).
    #[must_use]
    pub fn idle(pid: usize) -> Self {
        Self { number: 0, pid }
    }

    /// True when the process holds no ticket (`number == 0`).
    ///
    /// Note the paper's caveat (Section 5): in Bakery++ a zero number does
    /// *not* imply the process is uninterested in the critical section — it
    /// may be waiting at `L1` or about to retry after a reset.  This predicate
    /// therefore only describes the register contents, not intent.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.number == 0
    }

    /// The paper's `(a, b) < (c, d)` relation.
    ///
    /// Returns `true` when `self` has priority over `other` — i.e. `self`
    /// should enter the critical section first.
    #[must_use]
    pub fn precedes(&self, other: &Ticket) -> bool {
        TicketOrder::compare(*self, *other) == CmpOrdering::Less
    }
}

impl fmt::Display for Ticket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, p{})", self.number, self.pid)
    }
}

/// The total order on tickets used by the `L3` wait loop.
///
/// This is kept separate from an `Ord` impl on [`Ticket`] on purpose: the
/// algorithmic comparison is only meaningful between two *held* tickets
/// (non-zero numbers); the `L3` guard additionally checks `number[j] != 0`
/// before consulting the order, and the helper
/// [`TicketOrder::must_wait_for`] mirrors that guard exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TicketOrder;

impl TicketOrder {
    /// Lexicographic comparison of `(number, pid)` pairs.
    #[must_use]
    pub fn compare(a: Ticket, b: Ticket) -> CmpOrdering {
        match a.number.cmp(&b.number) {
            CmpOrdering::Equal => a.pid.cmp(&b.pid),
            other => other,
        }
    }

    /// The guard of the paper's `L3` loop for process `me` observing `other`:
    /// `number[j] != 0 and (number[j], j) < (number[i], i)`.
    ///
    /// Returns `true` when `me` must keep waiting because `other` has
    /// priority.
    #[must_use]
    pub fn must_wait_for(me: Ticket, other: Ticket) -> bool {
        other.number != 0 && Self::compare(other, me) == CmpOrdering::Less
    }

    /// The maximum ticket number among a set of observed numbers.
    ///
    /// This is the paper's `maximum(number[1], …, number[N])` function; the
    /// argument order is irrelevant, as the paper notes.
    #[must_use]
    pub fn maximum(numbers: &[u64]) -> u64 {
        numbers.iter().copied().max().unwrap_or(0)
    }
}

/// Convenience: sort tickets into service order (the order the bakery serves
/// customers).  Idle tickets (`number == 0`) are placed last.
#[must_use]
pub fn service_order(mut tickets: Vec<Ticket>) -> Vec<Ticket> {
    tickets.sort_by(|a, b| match (a.is_idle(), b.is_idle()) {
        (true, true) => a.pid.cmp(&b.pid),
        (true, false) => CmpOrdering::Greater,
        (false, true) => CmpOrdering::Less,
        (false, false) => TicketOrder::compare(*a, *b),
    });
    tickets
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn display_is_readable() {
        assert_eq!(Ticket::new(5, 2).to_string(), "(5, p2)");
    }

    #[test]
    fn idle_ticket_has_zero_number() {
        let t = Ticket::idle(3);
        assert!(t.is_idle());
        assert_eq!(t.number, 0);
        assert_eq!(t.pid, 3);
    }

    #[test]
    fn smaller_number_wins() {
        let a = Ticket::new(1, 9);
        let b = Ticket::new(2, 0);
        assert!(a.precedes(&b));
        assert!(!b.precedes(&a));
    }

    #[test]
    fn equal_numbers_tie_broken_by_pid() {
        let a = Ticket::new(4, 1);
        let b = Ticket::new(4, 2);
        assert!(a.precedes(&b));
        assert!(!b.precedes(&a));
    }

    #[test]
    fn must_wait_requires_nonzero_number() {
        let me = Ticket::new(3, 1);
        let idle = Ticket::idle(0);
        assert!(!TicketOrder::must_wait_for(me, idle));
        let holder = Ticket::new(1, 0);
        assert!(TicketOrder::must_wait_for(me, holder));
    }

    #[test]
    fn a_process_never_waits_for_itself() {
        let me = Ticket::new(3, 1);
        assert!(!TicketOrder::must_wait_for(me, me));
    }

    #[test]
    fn maximum_of_empty_is_zero() {
        assert_eq!(TicketOrder::maximum(&[]), 0);
    }

    #[test]
    fn maximum_is_order_insensitive() {
        assert_eq!(TicketOrder::maximum(&[3, 1, 7, 2]), 7);
        assert_eq!(TicketOrder::maximum(&[7, 3, 2, 1]), 7);
    }

    #[test]
    fn service_order_places_idle_last() {
        let order = service_order(vec![
            Ticket::idle(0),
            Ticket::new(2, 1),
            Ticket::new(1, 2),
            Ticket::idle(3),
        ]);
        assert_eq!(order[0], Ticket::new(1, 2));
        assert_eq!(order[1], Ticket::new(2, 1));
        assert!(order[2].is_idle());
        assert!(order[3].is_idle());
    }

    proptest! {
        /// The comparison is a strict total order on (number, pid) pairs:
        /// antisymmetric, transitive, and total.
        #[test]
        fn order_is_total_and_antisymmetric(
            a_num in 0u64..100, a_pid in 0usize..16,
            b_num in 0u64..100, b_pid in 0usize..16,
        ) {
            let a = Ticket::new(a_num, a_pid);
            let b = Ticket::new(b_num, b_pid);
            let ab = TicketOrder::compare(a, b);
            let ba = TicketOrder::compare(b, a);
            prop_assert_eq!(ab, ba.reverse());
            if a == b {
                prop_assert_eq!(ab, CmpOrdering::Equal);
            } else {
                prop_assert_ne!(ab, CmpOrdering::Equal);
            }
        }

        #[test]
        fn order_is_transitive(
            nums in proptest::collection::vec((0u64..50, 0usize..8), 3)
        ) {
            let a = Ticket::new(nums[0].0, nums[0].1);
            let b = Ticket::new(nums[1].0, nums[1].1);
            let c = Ticket::new(nums[2].0, nums[2].1);
            if TicketOrder::compare(a, b) == CmpOrdering::Less
                && TicketOrder::compare(b, c) == CmpOrdering::Less
            {
                prop_assert_eq!(TicketOrder::compare(a, c), CmpOrdering::Less);
            }
        }

        /// Two distinct waiting processes can never both have priority over
        /// each other — the core of the mutual exclusion argument.
        #[test]
        fn no_mutual_priority(
            a_num in 1u64..100, b_num in 1u64..100,
            a_pid in 0usize..16, b_pid in 0usize..16,
        ) {
            prop_assume!(a_pid != b_pid);
            let a = Ticket::new(a_num, a_pid);
            let b = Ticket::new(b_num, b_pid);
            let a_waits = TicketOrder::must_wait_for(a, b);
            let b_waits = TicketOrder::must_wait_for(b, a);
            prop_assert!(a_waits != b_waits, "exactly one of two ticket holders waits");
        }

        #[test]
        fn maximum_matches_iterator_max(values in proptest::collection::vec(0u64..1000, 0..32)) {
            let expected = values.iter().copied().max().unwrap_or(0);
            prop_assert_eq!(TicketOrder::maximum(&values), expected);
        }

        #[test]
        fn service_order_is_sorted(values in proptest::collection::vec((0u64..20, 0usize..8), 0..16)) {
            let tickets: Vec<Ticket> = values
                .iter()
                .enumerate()
                .map(|(i, (n, _))| Ticket::new(*n, i))
                .collect();
            let ordered = service_order(tickets);
            for pair in ordered.windows(2) {
                let (x, y) = (pair[0], pair[1]);
                if !x.is_idle() && !y.is_idle() {
                    prop_assert!(TicketOrder::compare(x, y) != CmpOrdering::Greater);
                }
                if x.is_idle() {
                    prop_assert!(y.is_idle());
                }
            }
        }
    }
}
