//! Async session clients: cancellation-safe `attach().await` / `lock().await`.
//!
//! The blocking [`SessionPlane::attach`] and [`Session::lock`] park the
//! calling *thread*; a lock service facing 10⁵⁺ transient clients cannot
//! afford one thread per client.  This module exposes the same two waits as
//! hand-rolled futures over the plain `std::task` machinery (no runtime
//! dependency): an executor polls them, and the wait plane's
//! [`register_waker`](crate::wait::WaitStrategy::register_waker) wakes them —
//! under [`crate::wait::Park`] a pending client costs one queued [`Waker`],
//! not a spinning core.
//!
//! ## Cancellation safety
//!
//! Dropping a future at any await point must leave the protocol exactly as a
//! *doorway crash followed by the paper's backout* would (assumptions
//! 1.5–1.7: a process may crash in its noncritical section only if its
//! registers read zero).  Both futures get this **structurally**, by never
//! holding protocol state across a `Pending`:
//!
//! * [`AttachFuture`] / [`AttachBatchFuture`] poll the lock-free
//!   [`SessionPlane::try_attach`] (/ batch) — a failed probe owns nothing,
//!   and an already-leased [`Session`] dropped with the future detaches
//!   through its own RAII, recycling the seat.
//! * [`SessionLockFuture`] polls [`Session::try_lock`], whose failure path
//!   *is* the paper's backout ([`crate::raw::RawMutexAlgorithm::try_acquire`]
//!   withdraws the doorway registers before returning `false`).  A dropped future
//!   therefore leaves `choosing[i] = number[i] = 0` — there is no
//!   half-entered doorway to leak, because between polls none exists.
//!
//! The one cancellation residue is a registered [`Waker`] that will soak up a
//! single wake; the session plane's batched attach wakes
//! (`ATTACH_WAKE_BATCH` in [`crate::session`]) and the release pulse's
//! broadcast tolerate both losses by design.
//!
//! ## The register-then-revalidate handshake
//!
//! A waker registered *after* the wake-carrying store would be a lost wakeup,
//! so both futures close the race the same way the thread path does:
//!
//! * attach registers under the plane's attach site with the free-seat
//!   predicate — [`register_waker`](crate::wait::WaitStrategy::register_waker)
//!   re-checks it after publishing the registration and reports a flip, upon
//!   which the future retries instead of going pending;
//! * lock registers under the underlying lock's release-pulse site, then
//!   performs **one more** `try_lock` before returning `Pending` — a release
//!   that slipped between the failed try and the registration is caught by
//!   the retry, and any later release finds the registration.
//!
//! Locks that expose no wait plane
//! ([`crate::raw::RawMutexAlgorithm::wait_handle`] returning `None`) degrade
//! to busy re-polling: the default `register_waker` wakes the task
//! immediately, which is exactly the spin strategy's semantics.

use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll};

use crate::session::{Session, SessionError, SessionGuard, SessionPlane};

impl SessionPlane {
    /// Leases a pid asynchronously: resolves to a [`Session`] once a seat
    /// frees up.  The async counterpart of [`SessionPlane::attach`];
    /// cancellation-safe (see the module docs).
    pub fn attach_async(self: &Arc<Self>) -> AttachFuture {
        AttachFuture {
            plane: Arc::clone(self),
        }
    }

    /// Leases up to `count` pids asynchronously, resolving once **all**
    /// `count` are held — the connection-storm batch path over
    /// [`SessionPlane::try_attach_batch`].  Seats already collected are held
    /// (and detached if the future is dropped) while the remainder waits.
    ///
    /// Note the deliberate non-goal: several concurrent batch futures may
    /// deadlock each other on an undersized plane (each hoarding part of its
    /// batch), exactly like any multi-resource hold-and-wait.  Callers that
    /// cannot rank their batches should attach one seat at a time.
    pub fn attach_batch_async(self: &Arc<Self>, count: usize) -> AttachBatchFuture {
        AttachBatchFuture {
            plane: Arc::clone(self),
            want: count,
            got: Vec::new(),
        }
    }
}

impl Session {
    /// Enters the critical section asynchronously: resolves to a
    /// [`SessionGuard`] once the underlying lock admits this session's pid.
    /// The async counterpart of [`Session::lock`]; cancellation-safe — every
    /// failed poll runs the paper's doorway backout, so dropping the future
    /// leaves this pid's registers reading zero.
    ///
    /// # Panics
    /// Polling panics if the session is stale (evicted by
    /// [`SessionPlane::force_detach`] or reaped), like [`Session::lock`].
    pub fn lock_async(&self) -> SessionLockFuture<'_> {
        SessionLockFuture { session: self }
    }
}

/// Future of [`SessionPlane::attach_async`]: resolves to a leased
/// [`Session`].
#[derive(Debug)]
#[must_use = "futures do nothing unless polled"]
pub struct AttachFuture {
    plane: Arc<SessionPlane>,
}

impl Future for AttachFuture {
    type Output = Session;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let plane = &self.get_mut().plane;
        let waits = plane.wait_plane();
        let site = waits.attach();
        loop {
            match plane.try_attach() {
                Ok(session) => return Poll::Ready(session),
                Err(SessionError::Exhausted { .. }) => {
                    // Register, revalidating the free-seat predicate after
                    // publication; a flip during registration means a seat
                    // freed concurrently — probe again instead of sleeping
                    // on a wake that may already have passed.
                    if waits.register_waker(site, cx.waker(), &mut || !plane.has_free_seat()) {
                        return Poll::Pending;
                    }
                }
            }
        }
    }
}

/// Future of [`SessionPlane::attach_batch_async`]: resolves to a vec of
/// `count` leased [`Session`]s.  Dropping it mid-flight detaches every seat
/// collected so far.
#[derive(Debug)]
#[must_use = "futures do nothing unless polled"]
pub struct AttachBatchFuture {
    plane: Arc<SessionPlane>,
    want: usize,
    got: Vec<Session>,
}

impl Future for AttachBatchFuture {
    type Output = Vec<Session>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let waits = this.plane.wait_plane().clone();
        let site = waits.attach();
        loop {
            let missing = this.want - this.got.len();
            if missing == 0 {
                return Poll::Ready(std::mem::take(&mut this.got));
            }
            let batch = this.plane.try_attach_batch(missing);
            if !batch.is_empty() {
                this.got.extend(batch);
                continue;
            }
            let plane = &this.plane;
            if waits.register_waker(site, cx.waker(), &mut || !plane.has_free_seat()) {
                return Poll::Pending;
            }
        }
    }
}

/// Future of [`Session::lock_async`]: resolves to a [`SessionGuard`].
#[derive(Debug)]
#[must_use = "futures do nothing unless polled"]
pub struct SessionLockFuture<'a> {
    session: &'a Session,
}

impl<'a> Future for SessionLockFuture<'a> {
    type Output = SessionGuard<'a>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let session = self.get_mut().session;
        if let Some(guard) = session.try_lock() {
            return Poll::Ready(guard);
        }
        match session.plane().algorithm().wait_handle() {
            Some(waits) => {
                // There is no cheap "would try_lock succeed" predicate, so
                // register unconditionally…
                let _ = waits.register_waker(waits.release(), cx.waker(), &mut || true);
                // …and close the release-before-register window with one
                // more try.  Success strands the registration; the next
                // release pulse drains it as a spurious wake.
                match session.try_lock() {
                    Some(guard) => Poll::Ready(guard),
                    None => Poll::Pending,
                }
            }
            None => {
                // No wait plane: degrade to busy re-polling (spin).
                cx.waker().wake_by_ref();
                Poll::Pending
            }
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::bakery_pp::BakeryPlusPlusLock;
    use crate::raw::RawMutexAlgorithm;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::task::{Wake, Waker};

    /// A waker that records being woken; `block_on` uses it as a readiness
    /// flag and re-polls (a one-future executor).
    struct Flag(AtomicBool);

    impl Wake for Flag {
        fn wake(self: Arc<Self>) {
            self.0.store(true, Ordering::SeqCst);
        }
    }

    fn block_on<F: Future>(fut: F) -> F::Output {
        let flag = Arc::new(Flag(AtomicBool::new(true)));
        let waker = Waker::from(Arc::clone(&flag));
        let mut cx = Context::from_waker(&waker);
        // SAFETY-free pinning: the future lives on this stack frame and is
        // never moved after the first poll.
        let mut fut = std::pin::pin!(fut);
        loop {
            while !flag.0.swap(false, Ordering::SeqCst) {
                std::thread::yield_now();
            }
            if let Poll::Ready(out) = fut.as_mut().poll(&mut cx) {
                return out;
            }
        }
    }

    fn plane(n: usize) -> Arc<SessionPlane> {
        SessionPlane::new(Arc::new(BakeryPlusPlusLock::with_bound(n, 255)))
    }

    #[test]
    fn attach_and_lock_resolve_uncontended() {
        let plane = plane(2);
        let session = block_on(plane.attach_async());
        {
            let guard = block_on(session.lock_async());
            assert_eq!(guard.pid(), session.pid());
        }
        drop(session);
        assert_eq!(plane.stats().attaches(), 1);
        assert_eq!(plane.stats().detaches(), 1);
        assert_eq!(plane.stats().cs_entries(), 1);
    }

    #[test]
    fn attach_future_waits_out_a_full_plane() {
        let plane = plane(1);
        let holder = block_on(plane.attach_async());
        let handle = {
            let plane = Arc::clone(&plane);
            std::thread::spawn(move || block_on(plane.attach_async()))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(holder); // frees the only seat; wakes the pending attach
        let session = handle.join().unwrap();
        assert_eq!(session.pid(), 0);
        assert_eq!(session.generation(), 1);
    }

    #[test]
    fn batch_attach_collects_across_frees() {
        let plane = plane(4);
        let hold = plane.try_attach_batch(2);
        assert_eq!(hold.len(), 2);
        let handle = {
            let plane = Arc::clone(&plane);
            std::thread::spawn(move || block_on(plane.attach_batch_async(4)))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(hold); // the last two seats arrive
        let all = handle.join().unwrap();
        assert_eq!(all.len(), 4);
        let mut pids: Vec<usize> = all.iter().map(Session::pid).collect();
        pids.sort_unstable();
        assert_eq!(pids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn dropped_attach_future_leaks_no_seat() {
        let plane = plane(1);
        let holder = block_on(plane.attach_async());
        // Poll a second attach to Pending, then cancel it.
        let flag = Arc::new(Flag(AtomicBool::new(false)));
        let waker = Waker::from(Arc::clone(&flag));
        let mut cx = Context::from_waker(&waker);
        let mut fut = Box::pin(plane.attach_async());
        assert!(fut.as_mut().poll(&mut cx).is_pending());
        drop(fut); // cancelled mid-wait
        drop(holder);
        // The cancelled waiter consumed nothing: the seat attaches freely.
        let session = plane.try_attach().expect("seat must be free");
        assert_eq!(plane.live_sessions(), 1);
        drop(session);
    }

    #[test]
    fn dropped_lock_future_leaves_registers_zero() {
        let lock = Arc::new(BakeryPlusPlusLock::with_bound(2, 255));
        let plane = SessionPlane::new(Arc::clone(&lock) as Arc<dyn RawMutexAlgorithm>);
        let a = block_on(plane.attach_async());
        let b = block_on(plane.attach_async());
        let guard = block_on(a.lock_async());
        // b's lock future goes Pending against the held lock, then is
        // dropped: the cancelled doorway must have backed out (the paper's
        // crash rule — registers read zero).
        let flag = Arc::new(Flag(AtomicBool::new(false)));
        let waker = Waker::from(Arc::clone(&flag));
        let mut cx = Context::from_waker(&waker);
        let mut fut = Box::pin(b.lock_async());
        assert!(fut.as_mut().poll(&mut cx).is_pending());
        drop(fut); // cancelled mid-acquisition
        assert_eq!(lock.registers().read_number(b.pid()), 0);
        assert!(!lock.registers().read_choosing(b.pid()));
        drop(guard);
        // And the cancelled session still works afterwards.
        assert!(block_on(b.lock_async()).pid() == b.pid());
    }

    #[test]
    fn lock_future_wakes_on_release() {
        let plane = plane(2);
        let a = block_on(plane.attach_async());
        let b = block_on(plane.attach_async());
        let guard = block_on(a.lock_async());
        let contender = std::thread::spawn(move || {
            let guard = block_on(b.lock_async());
            guard.pid()
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(guard); // the release pulse wakes the pending lock future
        assert_eq!(contender.join().unwrap(), 1);
    }
}
