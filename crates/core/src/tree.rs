//! Tournament-of-bounded-bakeries: a K-ary tree composite of Bakery++ nodes.
//!
//! The flat Bakery (and Bakery++) doorway scans all `N` registers, so both
//! the maximum computation and the `L2`/`L3` wait loops cost O(N) per
//! acquisition — the packed snapshot plane shrinks the constant but not the
//! growth.  [`TreeBakery`] composes **bounded-bakery nodes** into a K-ary
//! tournament instead: the `N` processes sit at the leaves of a K-ary tree
//! whose internal nodes are independent [`BakeryPlusPlusLock`] instances for
//! `K` participants each, and a process
//!
//! 1. acquires every node on the path from its leaf to the root (entering
//!    each node as the child slot it arrives from), then
//! 2. holds the critical section, then
//! 3. releases the nodes in the reverse order (root first), exactly as the
//!    Peterson tournament in `bakery-baselines` does.
//!
//! Entry therefore costs `O(K · log_K N)` doorway work instead of `O(N)` —
//! the first lock in the suite whose doorway is **sub-linear in N** — at the
//! price of losing global FCFS (fairness is FCFS per node, tournament-shaped
//! globally).
//!
//! ## Why the composition is safe
//!
//! Each node slot `c` of an internal node is only ever contended by processes
//! from the subtree below child `c`, and a process reaches the node only
//! *while holding* that entire subtree's locks.  Hence at most one process
//! occupies a given node slot at any time, which restores the single-writer
//! discipline each Bakery++ node relies on.  Mutual exclusion at the root
//! then follows from per-node mutual exclusion by induction over the levels.
//! The same argument gives deadlock freedom: every node is individually
//! deadlock-free, and the acquisition order (leaf-ward before root-ward,
//! released in reverse) is a fixed partial order, so no wait cycle can form.
//!
//! ## The per-node bound `M = K + 1`
//!
//! A node only ever serves `K` concurrent customers, so its tickets would be
//! unbounded only through the paper's §3 alternation — which Bakery++'s `L1`
//! guard and pre-increment check cut off at `M`.  `M = K + 1` is the smallest
//! bound that still admits one full round of distinct tickets (`1..=K`) plus
//! the transient `max + 1 = K + 1` a latecomer may draw, keeping every node
//! register in `[0, K + 1]` **by construction** regardless of how long the
//! lock runs.  Smaller bounds would still be safe but would trip the reset
//! path constantly; larger bounds only waste lane width in the packed plane.
//!
//! The composition is verified, not trusted: `bakery-spec::tree` models a
//! two-level tree as a step machine for the `bakery-mc` explorer, the
//! differential conformance suite (`tests/conformance.rs`) replays identical
//! seeded schedules against spec and lock, and the loom suite interleaves the
//! real atomics (`crates/core/tests/loom.rs`).

use std::sync::Arc;

use crate::bakery_pp::BakeryPlusPlusLock;
use crate::raw::{RawMutexAlgorithm};
use crate::slots::SlotAllocator;
use crate::snapshot::ScanMode;
use crate::stats::{LockStats, StatsSnapshot};
use crate::sync::{AtomicU64, Ordering};
use crate::wait::{WaitHandle, WaitStrategy};

/// Default tree arity: eight children per node keeps every node's packed
/// ticket array within one cache line while already giving depth 4 at
/// N = 1024 (vs a 1024-register flat scan).
pub const DEFAULT_TREE_ARITY: usize = 8;

/// A tournament tree of Bakery++ nodes for up to `N` processes.
///
/// ```
/// use bakery_core::{RawMutexAlgorithm, TreeBakery};
///
/// let lock = TreeBakery::with_arity(64, 4); // 64 processes, 4-ary tree
/// let slot = lock.register().unwrap();
/// let _guard = lock.lock(&slot);
/// assert_eq!(lock.depth(), 3); // 4^3 = 64 leaves
/// ```
#[derive(Debug)]
pub struct TreeBakery {
    /// `levels[0]` is the leaf level; the last level holds the single root.
    levels: Vec<Box<[BakeryPlusPlusLock]>>,
    arity: usize,
    capacity: usize,
    /// Per-node register bound `M = arity + 1`.
    bound: u64,
    mode: ScanMode,
    /// How many levels of its path each pid is currently *engaged* on
    /// (doorway entered or node won): `engaged[pid] == e` means levels
    /// `0..e` may carry this pid's register writes and levels `e..` are
    /// untouched by it.  SWMR (only pid's own thread stores on the lock
    /// paths), read by the crash reaper: slot ownership is dynamic above the
    /// leaves, so a crash recovery may only wipe the levels the pid actually
    /// reached — blindly clearing the whole path could destroy a *sibling's*
    /// tickets in the shared upper slots.  Each store happens *before* the
    /// node access it covers, so the recorded value is always a safe upper
    /// bound at every crash point.
    engaged: Box<[AtomicU64]>,
    slots: Arc<SlotAllocator>,
    stats: LockStats,
    /// Facade-level wait handle: shares the nodes' strategy, used by the
    /// session plane and async clients (the nodes own the actual wait loops).
    waits: WaitHandle,
}

impl TreeBakery {
    /// Creates a tree lock for `n` processes with [`DEFAULT_TREE_ARITY`].
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self::with_arity(n, DEFAULT_TREE_ARITY)
    }

    /// Creates a tree lock for `n` processes with `arity` children per node.
    ///
    /// # Panics
    /// Panics if `n == 0` or `arity < 2`.
    #[must_use]
    pub fn with_arity(n: usize, arity: usize) -> Self {
        Self::with_config(n, arity, ScanMode::Packed)
    }

    /// Creates a tree lock with every knob explicit; the [`ScanMode`] is
    /// applied to every node's register file, so the whole tree can be run
    /// against the padded seed layout as an ablation.
    ///
    /// # Panics
    /// Panics if `n == 0` or `arity < 2`.
    #[must_use]
    pub fn with_config(n: usize, arity: usize, mode: ScanMode) -> Self {
        Self::with_config_and_strategy(n, arity, mode, crate::wait::default_strategy())
    }

    /// Creates a tree lock whose nodes all share one [`WaitStrategy`]
    /// instance (each node keeps its own wait-site namespace, so waiters on
    /// different nodes never alias).
    ///
    /// # Panics
    /// Panics if `n == 0` or `arity < 2`.
    #[must_use]
    pub fn with_config_and_strategy(
        n: usize,
        arity: usize,
        mode: ScanMode,
        strategy: Arc<dyn WaitStrategy>,
    ) -> Self {
        assert!(n > 0, "a lock needs at least one process slot");
        assert!(arity >= 2, "a tree node needs at least two children");
        let bound = arity as u64 + 1;
        let depth = Self::depth_for(n, arity);
        let mut levels = Vec::with_capacity(depth);
        let mut group = arity; // leaves covered by one node at this level
        for _ in 0..depth {
            let nodes = n.div_ceil(group).max(1);
            levels.push(
                (0..nodes)
                    .map(|_| {
                        BakeryPlusPlusLock::with_bound_mode_and_strategy(
                            arity,
                            bound,
                            mode,
                            Arc::clone(&strategy),
                        )
                    })
                    .collect::<Vec<_>>()
                    .into_boxed_slice(),
            );
            group = group.saturating_mul(arity);
        }
        Self {
            levels,
            arity,
            capacity: n,
            bound,
            mode,
            engaged: (0..n).map(|_| AtomicU64::new(0)).collect(),
            slots: SlotAllocator::new(n),
            stats: LockStats::new(),
            waits: WaitHandle::new(strategy),
        }
    }

    /// Smallest depth `d >= 1` with `arity^d >= n`.
    fn depth_for(n: usize, arity: usize) -> usize {
        let mut depth = 1;
        let mut leaves = arity;
        while leaves < n {
            leaves = leaves.saturating_mul(arity);
            depth += 1;
        }
        depth
    }

    /// Children per node (the `K` of the K-ary tree).
    #[must_use]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of levels (node acquisitions per lock operation).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// The per-node register bound `M = arity + 1`.
    #[must_use]
    pub fn bound(&self) -> u64 {
        self.bound
    }

    /// The scan mode every node was built with.
    #[must_use]
    pub fn scan_mode(&self) -> ScanMode {
        self.mode
    }

    /// Total number of Bakery++ nodes in the tree.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.levels.iter().map(|level| level.len()).sum()
    }

    /// Number of nodes at `level` (level 0 is the leaf level).
    #[must_use]
    pub fn nodes_at(&self, level: usize) -> usize {
        self.levels[level].len()
    }

    /// Read-only view of one node (tests, conformance and reporting).
    #[must_use]
    pub fn node(&self, level: usize, index: usize) -> &BakeryPlusPlusLock {
        &self.levels[level][index]
    }

    /// The `(node index, slot)` process `pid` occupies at `level`.
    ///
    /// At level `l` the tree groups `arity^(l+1)` leaves under one node, and
    /// the slot is which `arity^l`-leaf subtree the process arrives from.
    /// Two processes share a slot at some level **iff** they share the entire
    /// subtree below it (`pid / arity^l` equal) — which is exactly why a slot
    /// is never driven by two processes at once: reaching the node requires
    /// holding that whole subtree.
    #[must_use]
    pub fn position(&self, pid: usize, level: usize) -> (usize, usize) {
        let below = self.arity.pow(level as u32);
        ((pid / below) / self.arity, (pid / below) % self.arity)
    }

    /// Sums the statistics of every node at `level`.
    #[must_use]
    pub fn level_snapshot(&self, level: usize) -> StatsSnapshot {
        let mut total = StatsSnapshot::default();
        for node in self.levels[level].iter() {
            total.merge(&node.stats().snapshot());
        }
        total
    }

    /// Sums the statistics of every node in the tree, plus the facade's own
    /// counters (critical-section entries are only counted at the tree level;
    /// doorway effort only inside the nodes).
    ///
    /// `cs_entries` is pinned to the facade's own counter: a per-node
    /// Bakery++ instance records a critical-section entry whenever it is
    /// driven through its *own* `RawMutexAlgorithm` facade (tests, conformance
    /// harnesses), and a blanket [`StatsSnapshot::merge`] would add those to
    /// the tree's count — double counting the documented "once at the tree
    /// facade" semantics.
    #[must_use]
    pub fn aggregate_snapshot(&self) -> StatsSnapshot {
        let mut total = self.stats.snapshot();
        let facade_cs_entries = total.cs_entries;
        for level in 0..self.depth() {
            total.merge(&self.level_snapshot(level));
        }
        total.cs_entries = facade_cs_entries;
        total
    }

    /// Applies the paper's crash rule (assumptions 1.5–1.7) to the levels of
    /// `pid`'s leaf-to-root path the pid was engaged on: each such slot's
    /// choosing *and* number words — plus the packed mirror — are zeroed,
    /// highest engaged level first (the same root-first order `release`
    /// uses, so a node is never re-opened to contenders while an ancestor
    /// slot still carries the crashed process's registers).  Levels above
    /// the engagement mark are deliberately left alone: their slots may
    /// legitimately hold a *sibling's* tickets (slot ownership above the
    /// leaves follows whoever holds the subtree).
    ///
    /// This is the stats-free primitive shared by [`TreeBakery`]'s own
    /// `crash_abort` and the adaptive facade's crash path (which accounts the
    /// abort once, on its own counters).
    pub fn crash_reset_path(&self, pid: usize) {
        assert!(pid < self.capacity, "pid {pid} out of range");
        let engaged = self.engaged[pid].load(Ordering::SeqCst) as usize; // mem: engaged-mark
        for level in (0..engaged.min(self.depth())).rev() {
            let (node, slot) = self.position(pid, level);
            self.levels[level][node].crash_reset(slot);
        }
        self.engaged[pid].store(0, Ordering::SeqCst); // mem: engaged-mark
    }

    /// Words one uncontended acquisition reads in the doorway scans across
    /// all levels — the figure the E6/E10 sub-linearity comparison reports.
    ///
    /// In packed mode each node costs its snapshot plane's word count; in
    /// padded mode it costs `2 * arity` cache-padded registers.  The flat
    /// equivalent is the packed plane word count (or `2N`) of one lock
    /// spanning all `N` processes.
    #[must_use]
    pub fn doorway_scan_words(&self) -> usize {
        let per_node = match self.levels[0][0].registers().packed() {
            Some(packed) => packed.word_count(),
            None => 2 * self.arity,
        };
        per_node * self.depth()
    }
}

impl RawMutexAlgorithm for TreeBakery {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn acquire(&self, pid: usize) {
        assert!(pid < self.capacity, "pid {pid} out of range");
        for level in 0..self.depth() {
            let (node, slot) = self.position(pid, level);
            // Raise the engagement mark before touching the node, so a
            // crash at any point inside it is covered by the recovery wipe.
            self.engaged[pid].store(level as u64 + 1, Ordering::SeqCst); // mem: engaged-mark
            self.levels[level][node].acquire(slot);
        }
    }

    fn release(&self, pid: usize) {
        // Root first, leaf last: a node is never exposed to new contenders
        // while one of its ancestors is still held by this process.  The
        // engagement mark drops *before* each node release — once released,
        // the slot may be re-won by a sibling, and a later crash recovery
        // must not wipe the sibling's tickets out of it.
        for level in (0..self.depth()).rev() {
            let (node, slot) = self.position(pid, level);
            self.engaged[pid].store(level as u64, Ordering::SeqCst); // mem: engaged-mark
            self.levels[level][node].release(slot);
        }
        // Facade-level release pulse for async lock futures (the per-node
        // L2/L3 wakes happened inside each node's release above).
        self.waits.notify(self.waits.release());
    }

    fn try_acquire(&self, pid: usize) -> bool {
        assert!(pid < self.capacity, "pid {pid} out of range");
        // Try each node on the leaf-to-root path; on the first failure,
        // release the acquired prefix in reverse order, exactly as a full
        // release walks back down.
        for level in 0..self.depth() {
            let (node, slot) = self.position(pid, level);
            self.engaged[pid].store(level as u64 + 1, Ordering::SeqCst); // mem: engaged-mark
            if !self.levels[level][node].try_acquire(slot) {
                for held in (0..level).rev() {
                    let (node, slot) = self.position(pid, held);
                    self.engaged[pid].store(held as u64, Ordering::SeqCst); // mem: engaged-mark
                    self.levels[held][node].release(slot);
                }
                if level == 0 {
                    self.engaged[pid].store(0, Ordering::SeqCst); // mem: engaged-mark
                }
                return false;
            }
        }
        true
    }

    fn crash_abort(&self, pid: usize) -> bool {
        self.crash_reset_path(pid);
        self.stats.record_crash_abort();
        true
    }

    fn algorithm_name(&self) -> &'static str {
        "tree-bakery"
    }

    fn shared_word_count(&self) -> usize {
        // Each node contributes choosing[0..K] and number[0..K].
        self.node_count() * 2 * self.arity
    }

    fn register_bound(&self) -> Option<u64> {
        Some(self.bound)
    }

    fn slot_allocator(&self) -> &Arc<SlotAllocator> {
        &self.slots
    }

    fn stats(&self) -> &LockStats {
        &self.stats
    }

    fn wait_handle(&self) -> Option<&WaitHandle> {
        Some(&self.waits)
    }

    fn as_raw(&self) -> &dyn RawMutexAlgorithm {
        self
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn geometry_matches_arity_and_size() {
        let lock = TreeBakery::with_arity(64, 4);
        assert_eq!(lock.capacity(), 64);
        assert_eq!(lock.depth(), 3, "4^3 = 64");
        assert_eq!(lock.arity(), 4);
        assert_eq!(lock.bound(), 5);
        assert_eq!(lock.register_bound(), Some(5));
        // Levels: 16 leaf nodes, 4 mid nodes, 1 root.
        assert_eq!(lock.nodes_at(0), 16);
        assert_eq!(lock.nodes_at(1), 4);
        assert_eq!(lock.nodes_at(2), 1);
        assert_eq!(lock.node_count(), 21);
        assert_eq!(lock.shared_word_count(), 21 * 8);
    }

    #[test]
    fn crash_abort_clears_the_engaged_path_and_unblocks_the_neighbor() {
        let lock = TreeBakery::with_arity(4, 2);
        assert_eq!(lock.depth(), 2);
        // pid 0 "crashes" while holding its full path (engaged on both
        // levels); before the recovery its sibling cannot get past the leaf.
        lock.acquire(0);
        assert!(!lock.try_acquire(1), "pid 1 shares the held leaf");
        assert!(lock.crash_abort(0));
        assert_eq!(lock.stats().crash_aborts(), 1);
        // The paper's crash rule held at every engaged level: the neighbor
        // sails through, and the whole path reads zero.
        assert!(lock.try_acquire(1), "the crash freed the path");
        lock.release(1);
        for level in 0..lock.depth() {
            let (node, slot) = lock.position(0, level);
            let file = lock.node(level, node).registers();
            assert_eq!(file.read_number(slot), 0);
            assert!(!file.read_choosing(slot));
        }
    }

    #[test]
    fn crash_abort_never_wipes_a_siblings_upper_level_tickets() {
        // pid 0 and pid 1 share their leaf node AND the root slot (slot
        // ownership above the leaves follows whoever holds the subtree).
        // pid 1 holds the full path; pid 0 never got past a failed try —
        // its crash recovery must not touch the shared root slot.
        let lock = TreeBakery::with_arity(4, 2);
        assert_eq!(lock.position(0, 1), lock.position(1, 1), "shared root slot");
        lock.acquire(1);
        assert!(!lock.try_acquire(0), "the leaf is contended");
        assert!(lock.crash_abort(0));
        let (root, slot) = lock.position(1, 1);
        assert_ne!(
            lock.node(1, root).registers().read_number(slot),
            0,
            "pid 1's root ticket must survive pid 0's crash recovery"
        );
        // pid 1's critical section is intact and releases normally.
        lock.release(1);
        assert!(lock.try_acquire(0), "the path is free after the release");
        lock.release(0);
    }

    #[test]
    fn ragged_sizes_trim_unreachable_nodes() {
        let lock = TreeBakery::with_arity(6, 2);
        assert_eq!(lock.depth(), 3, "2^3 = 8 >= 6");
        assert_eq!(lock.nodes_at(0), 3, "leaves 0..6 need only 3 leaf nodes");
        assert_eq!(lock.nodes_at(1), 2);
        assert_eq!(lock.nodes_at(2), 1);
    }

    #[test]
    fn single_node_tree_is_flat_bakery_pp() {
        let lock = TreeBakery::with_arity(3, 8);
        assert_eq!(lock.depth(), 1);
        assert_eq!(lock.node_count(), 1);
        let slot = lock.register().unwrap();
        for _ in 0..10 {
            let _g = lock.lock(&slot);
        }
        assert_eq!(lock.stats().cs_entries(), 10);
        assert_eq!(lock.level_snapshot(0).fast_path_hits, 10);
    }

    #[test]
    fn paths_end_at_root_and_sibling_slots_differ() {
        let lock = TreeBakery::with_arity(16, 2);
        for pid in 0..16 {
            let (root_node, _) = lock.position(pid, lock.depth() - 1);
            assert_eq!(root_node, 0, "pid {pid} must meet everyone at the root");
        }
        // Sibling leaves share their leaf node on different slots.
        assert_eq!(lock.position(0, 0).0, lock.position(1, 0).0);
        assert_ne!(lock.position(0, 0).1, lock.position(1, 0).1);
        // Cousins share level 1 but not level 0.
        assert_ne!(lock.position(0, 0).0, lock.position(2, 0).0);
        assert_eq!(lock.position(0, 1).0, lock.position(2, 1).0);
    }

    #[test]
    fn aggregate_snapshot_folds_all_levels() {
        let lock = TreeBakery::with_arity(4, 2);
        let slot = lock.register().unwrap();
        for _ in 0..5 {
            let _g = lock.lock(&slot);
        }
        let total = lock.aggregate_snapshot();
        assert_eq!(total.cs_entries, 5, "entries counted once, at the facade");
        assert_eq!(
            total.fast_path_hits, 10,
            "each acquisition fast-paths through both levels"
        );
        assert_eq!(total.overflow_attempts, 0);
    }

    #[test]
    fn aggregate_cs_entries_ignore_node_facade_traffic() {
        // Driving a node through its own RawMutexAlgorithm facade records
        // cs_entries in that node's stats block; the tree aggregate must keep
        // counting entries once, at the tree facade only.
        let lock = TreeBakery::with_arity(4, 2);
        let slot = lock.register().unwrap();
        for _ in 0..3 {
            let _g = lock.lock(&slot);
        }
        let leaf = lock.node(0, 0);
        let leaf_slot = leaf.register().unwrap();
        for _ in 0..7 {
            let _g = leaf.lock(&leaf_slot);
        }
        assert_eq!(leaf.stats().cs_entries(), 7);
        assert_eq!(
            lock.aggregate_snapshot().cs_entries,
            lock.stats().cs_entries(),
            "cs_entries counts once at the tree facade"
        );
        assert_eq!(lock.aggregate_snapshot().cs_entries, 3);
    }

    #[test]
    fn aggregate_cs_entries_match_facade_after_contended_run() {
        let lock = Arc::new(TreeBakery::with_arity(4, 2));
        stress(&lock, 4, 150);
        assert_eq!(
            lock.aggregate_snapshot().cs_entries,
            lock.stats().cs_entries(),
            "aggregate cs_entries must equal the facade count"
        );
        assert_eq!(lock.stats().cs_entries(), 600);
    }

    #[test]
    fn doorway_scan_words_are_sublinear_in_n() {
        fn flat_words(n: usize) -> usize {
            let flat = BakeryPlusPlusLock::with_bound(n, crate::DEFAULT_PP_BOUND);
            flat.registers().packed().expect("packed default").word_count()
        }
        fn tree_words(n: usize) -> usize {
            TreeBakery::with_arity(n, 8).doorway_scan_words()
        }
        // Quadrupling N quadruples the flat scan but only adds one level
        // (a constant number of words) to the tree's path.
        assert_eq!(flat_words(1024), 4 * flat_words(256));
        assert!(tree_words(1024) <= tree_words(256) + tree_words(256) / 2);
        assert!(tree_words(1024) * 4 < flat_words(1024));
    }

    #[test]
    fn padded_mode_applies_to_every_node() {
        let lock = TreeBakery::with_config(4, 2, ScanMode::Padded);
        assert_eq!(lock.scan_mode(), ScanMode::Padded);
        for level in 0..lock.depth() {
            for node in 0..lock.nodes_at(level) {
                assert!(lock.node(level, node).registers().packed().is_none());
            }
        }
        let slot = lock.register().unwrap();
        drop(lock.lock(&slot));
        assert_eq!(lock.aggregate_snapshot().fast_path_hits, 0);
        assert_eq!(lock.doorway_scan_words(), 2 * 2 * lock.depth());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_pid_panics() {
        let lock = TreeBakery::with_arity(3, 2);
        lock.acquire(3);
    }

    #[test]
    #[should_panic(expected = "at least two children")]
    fn unary_tree_is_rejected() {
        let _ = TreeBakery::with_arity(4, 1);
    }

    fn stress(lock: &Arc<TreeBakery>, threads: usize, iterations: u64) {
        let in_cs = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let lock = Arc::clone(lock);
                let in_cs = Arc::clone(&in_cs);
                scope.spawn(move || {
                    let slot = lock.register().unwrap();
                    for _ in 0..iterations {
                        let _g = lock.lock(&slot);
                        assert_eq!(in_cs.fetch_add(1, Ordering::SeqCst), 0);
                        in_cs.fetch_sub(1, Ordering::SeqCst);
                    }
                });
            }
        });
    }

    #[test]
    fn mutual_exclusion_two_levels_binary() {
        let lock = Arc::new(TreeBakery::with_arity(4, 2));
        stress(&lock, 4, 400);
        let total = lock.aggregate_snapshot();
        assert_eq!(lock.stats().cs_entries(), 1600);
        assert_eq!(total.overflow_attempts, 0);
        assert!(total.max_ticket <= lock.bound());
    }

    #[test]
    fn mutual_exclusion_three_levels_ragged() {
        let lock = Arc::new(TreeBakery::with_arity(6, 2));
        stress(&lock, 6, 200);
        assert_eq!(lock.stats().cs_entries(), 1200);
        assert_eq!(lock.aggregate_snapshot().overflow_attempts, 0);
    }

    #[test]
    fn mutual_exclusion_padded_mode() {
        let lock = Arc::new(TreeBakery::with_config(4, 2, ScanMode::Padded));
        stress(&lock, 4, 250);
        assert_eq!(lock.stats().cs_entries(), 1000);
        assert_eq!(lock.aggregate_snapshot().fast_path_hits, 0);
    }

    #[test]
    fn large_n_few_threads_touches_only_the_path() {
        // Capacity 512 with 4 live threads: the whole point of the tree is
        // that the doorway cost depends on the path, not on N.
        let lock = Arc::new(TreeBakery::with_arity(512, 8));
        stress(&lock, 4, 100);
        let total = lock.aggregate_snapshot();
        assert_eq!(lock.stats().cs_entries(), 400);
        assert_eq!(total.overflow_attempts, 0);
        assert!(total.max_ticket <= lock.bound());
        // Only the nodes on the four threads' paths saw traffic.
        let leaf = lock.level_snapshot(0);
        assert!(leaf.max_ticket >= 1);
    }

    proptest! {
        /// Leaf assignment is collision-free: distinct pids occupy distinct
        /// (node, slot) pairs at the leaf level, and at every level two pids
        /// share a (node, slot) exactly when they share the whole subtree
        /// below that level.
        #[test]
        fn leaf_assignment_is_collision_free(n in 1usize..80, arity in 2usize..6) {
            let lock = TreeBakery::with_arity(n, arity);
            let mut seen = std::collections::HashSet::new();
            for pid in 0..n {
                prop_assert!(seen.insert(lock.position(pid, 0)), "leaf clash for pid {pid}");
            }
            for level in 0..lock.depth() {
                let below = arity.pow(level as u32);
                for a in 0..n {
                    for b in (a + 1)..n {
                        let same_subtree = a / below == b / below;
                        prop_assert_eq!(
                            lock.position(a, level) == lock.position(b, level),
                            same_subtree,
                            "pids {} and {} at level {}", a, b, level
                        );
                    }
                }
                // Every node/slot index the level hands out is in range.
                for pid in 0..n {
                    let (node, slot) = lock.position(pid, level);
                    prop_assert!(node < lock.nodes_at(level));
                    prop_assert!(slot < arity);
                }
            }
            let (root, _) = lock.position(n - 1, lock.depth() - 1);
            prop_assert_eq!(root, 0);
        }

        /// The slot allocator's claimed pids map to collision-free leaves:
        /// claiming every slot yields n distinct leaf positions.
        #[test]
        fn slot_allocator_claims_map_to_distinct_leaves(n in 1usize..40, arity in 2usize..5) {
            let lock = TreeBakery::with_arity(n, arity);
            let slots: Vec<_> = (0..n).map(|_| lock.register().unwrap()).collect();
            let leaves: std::collections::HashSet<_> =
                slots.iter().map(|s| lock.position(s.pid(), 0)).collect();
            prop_assert_eq!(leaves.len(), n);
            prop_assert!(lock.register().is_err(), "all slots claimed");
        }

        /// Under wraparound pressure (tiny per-node M = arity + 1, more live
        /// threads than any single node can hold tickets for) every node's
        /// registers stay within [0, M] and no node ever attempts an
        /// overflowing store.
        #[test]
        fn per_node_tickets_never_leave_bound(
            arity in 2usize..4,
            threads in 2usize..5,
            iterations in 20u64..60,
        ) {
            let n = arity * arity; // two full levels
            let lock = Arc::new(TreeBakery::with_arity(n, arity));
            let threads = threads.min(n);
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    let lock = Arc::clone(&lock);
                    scope.spawn(move || {
                        let slot = lock.register().unwrap();
                        for _ in 0..iterations {
                            let _g = lock.lock(&slot);
                        }
                    });
                }
            });
            let bound = lock.bound();
            for level in 0..lock.depth() {
                for node in 0..lock.nodes_at(level) {
                    let stats = lock.node(level, node).stats().snapshot();
                    prop_assert_eq!(stats.overflow_attempts, 0);
                    prop_assert!(stats.max_ticket <= bound,
                        "level {} node {} ticket {} > M {}", level, node, stats.max_ticket, bound);
                    // The live register values are bounded too, not just the
                    // high-water mark.
                    let file = lock.node(level, node).registers();
                    for j in 0..file.len() {
                        prop_assert!(file.read_number(j) <= bound);
                    }
                }
            }
        }
    }
}
