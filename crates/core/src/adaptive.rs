//! [`AdaptiveBakery`]: a flat Bakery++ that migrates to a tree under load —
//! and back to flat once the load subsides.
//!
//! The flat packed-snapshot Bakery++ wins while few processes are live (one
//! small scan, global FCFS); the [`TreeBakery`] wins once contention or
//! membership grows (O(K·log_K N) doorway, contention resolved inside
//! subtrees).  The adaptive lock starts flat and performs a **quiescent
//! handoff** to the tree when either forward trigger fires:
//!
//! * **leased capacity** — live sessions (`attaches − detaches`, maintained
//!   by the session plane) reach `capacity_threshold`;
//! * **observed contention** — the flat lock's doorway wait iterations
//!   accumulated *during the current flat residency* reach
//!   `contention_threshold`.
//!
//! A lock that survives one load spike should not pay tree-depth acquire
//! cost forever, so the migration is a **cycle**, not a one-way door: once
//! the tree plane has been quiet for long enough (the hysteresis band,
//! below), a symmetric reverse handoff drains the tree and returns to flat.
//!
//! ## The epoch cycle
//!
//! One generation-tagged word drives everything:
//! `epoch = (cycle << 2) | phase`, with the phase walking
//!
//! ```text
//!        forward trigger          drain: flat_active == 0
//!   FLAT ───────────────► DRAIN_FLAT ───────────────► TREE
//!    ▲                                                  │
//!    │ drain: tree_active == 0                          │ reverse trigger
//!    └────────────────── DRAIN_TREE ◄───────────────────┘ (hysteresis band)
//!
//!   word:  4c ──► 4c+1 ──► 4c+2 ──► 4c+3 ──► 4(c+1)   (cycle c, then c+1)
//! ```
//!
//! Every legal transition is a CAS of `word → word + 1` (the `DRAIN_TREE(c)
//! → FLAT(c+1)` wrap is also `+ 1` because the cycle tag occupies the high
//! bits), so the epoch **word** is strictly monotone even though the phase
//! revisits `FLAT`.  That turns PR 4's monotonicity argument into a
//! per-cycle argument: an acquirer validates the *full word* — phase and
//! cycle — in its Dekker re-check, so a stale observation of `FLAT` from
//! cycle `c` can never authorise a flat entry in cycle `c + 1` (the ABA a
//! phase-only comparison could not detect).
//!
//! ## The handoff protocol (both directions)
//!
//! Two announce counters mirror each other: `flat_active` counts
//! acquisitions currently routed to the flat plane, `tree_active` those
//! routed to the tree.
//!
//! ```text
//! acquire(i):                          drain helper (any process):
//!   loop:                                if phase is a DRAIN and the
//!     w := epoch                         draining plane's counter == 0:
//!     if phase(w) is a DRAIN:              CAS epoch: w -> w + 1
//!       help drain; retry
//!     plane := FLAT or TREE by phase(w)  release(i):
//!     plane_active += 1                    plane[i].release(i)
//!     if epoch != w:                       plane_active -= 1
//!       plane_active -= 1; retry           (tree route: hysteresis check)
//!     plane.acquire(i); return
//! ```
//!
//! The store→load handshake mirrors the Bakery doorway's Dekker pattern in
//! both directions: an acquirer *increments the active counter and then
//! re-reads `epoch`*, while the drainer *advances `epoch` and then reads the
//! counter*.  Under the interleaving semantics at least one side observes
//! the other, so either the acquirer aborts its route or the drainer waits
//! for it — a flat acquisition can never overlap a tree acquisition, in
//! either migration direction, and mutual exclusion of the composite
//! follows from mutual exclusion of each plane.  This exact handshake —
//! full cycle, both drains, triggers nondeterministic — is modelled as a
//! step machine in `bakery-spec::adaptive` and explored exhaustively by
//! `bakery-mc` (`crates/mc/tests/adaptive_handoff.rs`).
//!
//! ## The hysteresis band (flapping-proofing)
//!
//! The reverse trigger must not chase the forward one, so the two operate on
//! separated thresholds (`low_watermark < capacity_threshold`) and the
//! reverse additionally requires *persistence*: a release through the tree
//! route counts as **quiet** when live sessions *and* concurrently announced
//! tree acquirers (`tree_active`, the O(1) contention proxy) are both below
//! `low_watermark`; any loud observation zeroes the streak, and only
//! `quiet_period` *consecutive* quiet releases arm the reverse CAS.  Two
//! further rules keep the band flap-proof across cycles:
//!
//! * the quiet streak is zeroed when the forward drain flips to `TREE`, and
//!   every streak observation is **tagged with the epoch word of the
//!   residency it was made in** — so a streak accumulated in cycle `c`, or a
//!   single release preempted across a whole round trip, can never arm or
//!   inflate the reverse of cycle `c + 1` (the spec's `NoFlapStaleArming`
//!   invariant pins exactly this);
//! * the forward *contention* trigger measures doorway waits relative to a
//!   baseline captured when the reverse drain flips back to `FLAT`, so
//!   contention suffered before a round trip cannot instantly re-trigger
//!   the next one.
//!
//! Both baseline writes happen *before* their flip CAS: a stale drain helper
//! can therefore only delay a later trigger (conservative), never make one
//! fire early.
//!
//! ## Statistics
//!
//! `cs_entries` is counted once, at the adaptive facade, exactly like the
//! tree facade does — [`AdaptiveBakery::aggregate_snapshot`] folds the flat
//! plane's and every tree node's counters but pins `cs_entries` to the
//! facade's own count, so the PR 3 facade-only rule survives any number of
//! round trips (counted neither zero nor twice during a handoff).  Completed
//! handoffs are counted in [`LockStats::migrations_forward`] /
//! [`LockStats::migrations_reverse`]; the two can never differ by more than
//! one because the phase cycle alternates them.

use std::sync::Arc;

use crate::bakery_pp::BakeryPlusPlusLock;
use crate::raw::RawMutexAlgorithm;
use crate::slots::SlotAllocator;
use crate::snapshot::ScanMode;
use crate::stats::{LockStats, StatsSnapshot};
use crate::sync::{AtomicU64, Ordering};
use crate::tree::{TreeBakery, DEFAULT_TREE_ARITY};
use crate::wait::{WaitHandle, WaitStrategy, WaitToken};

/// Epoch phase: all acquisitions route to the flat Bakery++.
pub const EPOCH_FLAT: u64 = 0;
/// Epoch phase: forward migration triggered; the flat plane is draining.
pub const EPOCH_DRAIN: u64 = 1;
/// Epoch phase: all acquisitions route to the tree.
pub const EPOCH_TREE: u64 = 2;
/// Epoch phase: reverse migration triggered; the tree plane is draining.
pub const EPOCH_DRAIN_TREE: u64 = 3;

/// Announce-ledger value: `pid` holds no outstanding announce-counter
/// increment.
const ANNOUNCE_NONE: u64 = 0;
/// Announce-ledger value: `pid`'s outstanding increment is on `flat_active`.
const ANNOUNCE_FLAT: u64 = 1;
/// Announce-ledger value: `pid`'s outstanding increment is on `tree_active`.
const ANNOUNCE_TREE: u64 = 2;

/// Number of low bits of the epoch word holding the phase.
const PHASE_BITS: u32 = 2;
/// Mask extracting the phase from an epoch word.
const PHASE_MASK: u64 = (1 << PHASE_BITS) - 1;

/// The phase component of an epoch word ([`EPOCH_FLAT`], [`EPOCH_DRAIN`],
/// [`EPOCH_TREE`] or [`EPOCH_DRAIN_TREE`]).
#[inline]
#[must_use]
pub fn epoch_phase(word: u64) -> u64 {
    word & PHASE_MASK
}

/// The cycle (generation) component of an epoch word: how many full
/// `FLAT → … → FLAT` round trips precede it.
#[inline]
#[must_use]
pub fn epoch_cycle(word: u64) -> u64 {
    word >> PHASE_BITS
}

/// Default live-session count that triggers the forward migration (fraction
/// of capacity, see [`AdaptiveBakery::default_capacity_threshold`]).
const DEFAULT_CAPACITY_FRACTION: usize = 2; // capacity / 2

/// Default per-residency flat doorway-wait iterations that trigger the
/// forward migration.
pub const DEFAULT_CONTENTION_THRESHOLD: u64 = 1 << 14;

/// Default number of consecutive quiet tree releases required to arm the
/// reverse migration.
pub const DEFAULT_QUIET_PERIOD: u64 = 64;

/// A lock that starts as a flat packed-snapshot Bakery++, migrates to a
/// [`TreeBakery`] when leased capacity or observed contention crosses a
/// threshold, and migrates back to flat once the tree has stayed below the
/// low watermark for a full quiet period.
///
/// ```
/// use bakery_core::{AdaptiveBakery, RawMutexAlgorithm};
///
/// let lock = AdaptiveBakery::new(16);
/// let slot = lock.register().unwrap();
/// drop(lock.lock(&slot));
/// assert!(!lock.has_migrated());
/// lock.trigger_migration();          // or cross a threshold under load
/// drop(lock.lock(&slot));
/// assert!(lock.has_migrated());      // currently on the tree plane
/// assert_eq!(lock.stats().migrations_forward(), 1);
/// assert_eq!(lock.stats().cs_entries(), 2);
/// ```
#[derive(Debug)]
pub struct AdaptiveBakery {
    flat: BakeryPlusPlusLock,
    tree: TreeBakery,
    /// The generation-tagged epoch word `(cycle << 2) | phase`; strictly
    /// monotone (every transition is a `+ 1` CAS).
    epoch: AtomicU64,
    /// Number of acquisitions currently routed to the flat plane
    /// (incremented *before* the epoch re-check — the Dekker half of the
    /// forward-drain handshake).
    flat_active: AtomicU64,
    /// Number of acquisitions currently routed to the tree plane — the
    /// mirror announce counter the reverse drain reads, and the O(1)
    /// contention proxy of the hysteresis band.
    tree_active: AtomicU64,
    /// Which plane each pid's current acquisition went through (SWMR: only
    /// pid's own thread writes entry `pid`).
    route: Box<[AtomicU64]>,
    /// Per-pid announce ledger ([`ANNOUNCE_NONE`] / [`ANNOUNCE_FLAT`] /
    /// [`ANNOUNCE_TREE`]): which announce counter currently carries an
    /// increment on `pid`'s behalf.  Written by `pid`'s own thread on the
    /// acquire/release paths and *read by the reaper* after a crash — the
    /// record [`AdaptiveBakery::crash_abort`] needs to roll the drain
    /// handshake back for a pid that died mid-doorway (a leaked increment
    /// would wedge every later drain at `active != 0`).
    announce: Box<[AtomicU64]>,
    capacity_threshold: usize,
    contention_threshold: u64,
    /// Hysteresis low watermark; `0` disables the reverse leg entirely.
    low_watermark: usize,
    /// Consecutive quiet tree releases required to arm the reverse trigger.
    quiet_period: u64,
    /// Current quiet streak, packed `(epoch_word & u32::MAX) << 32 | count`:
    /// the tag pins every observation to the tree residency it was made in,
    /// so a release preempted across a whole round trip can never count
    /// toward (or inflate) a later residency's quiet period — the same
    /// staleness rule the spec's `NoFlapStaleArming` invariant pins for the
    /// ARMED bit.  Zeroed by any loud observation and at every forward flip.
    quiet_streak: AtomicU64,
    /// Flat doorway waits at the start of the current flat residency; the
    /// forward contention trigger fires on the delta, not the lifetime sum.
    flat_waits_baseline: AtomicU64,
    /// Facade-level wait plane: the guard site is the drain-phase predicate
    /// (parked acquirers are woken by every successful epoch CAS), and both
    /// planes share this handle's strategy so one `BAKERY_WAIT_STRATEGY`
    /// choice governs the whole composite.
    waits: WaitHandle,
    slots: Arc<SlotAllocator>,
    stats: LockStats,
}

impl AdaptiveBakery {
    /// Creates an adaptive lock for `n` processes with the default thresholds
    /// (migrate at `n / 2` live sessions — at least 2 — or after `2^14`
    /// flat doorway wait iterations per residency; migrate back after
    /// [`DEFAULT_QUIET_PERIOD`] consecutive quiet tree releases below the
    /// default low watermark) and default tree arity.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self::with_mode(n, ScanMode::Packed)
    }

    /// Creates an adaptive lock with the default thresholds and an explicit
    /// [`ScanMode`] — the constructor the registry uses, so factory-built
    /// locks can never drift from [`AdaptiveBakery::new`]'s tuning.
    #[must_use]
    pub fn with_mode(n: usize, mode: ScanMode) -> Self {
        Self::with_hysteresis(
            n,
            mode,
            Self::default_capacity_threshold(n),
            DEFAULT_CONTENTION_THRESHOLD,
            Self::default_low_watermark(n),
            DEFAULT_QUIET_PERIOD,
        )
    }

    /// The default leased-capacity migration threshold for an `n`-slot lock:
    /// half the capacity, but at least 2 (a single live session never
    /// migrates).
    #[must_use]
    pub fn default_capacity_threshold(n: usize) -> usize {
        (n / DEFAULT_CAPACITY_FRACTION).max(2)
    }

    /// The default hysteresis low watermark: half the capacity threshold,
    /// but at least 1 — always strictly below the forward threshold, so the
    /// two triggers can never chase each other.
    #[must_use]
    pub fn default_low_watermark(n: usize) -> usize {
        (Self::default_capacity_threshold(n) / 2).max(1)
    }

    /// Creates a **forward-only** adaptive lock (PR 4 semantics: the reverse
    /// leg is disabled, `low_watermark = 0`).  The [`ScanMode`] applies to
    /// both planes; the flat plane uses the default Bakery++ bound, the tree
    /// its per-node `M = K + 1`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[must_use]
    pub fn with_config(
        n: usize,
        mode: ScanMode,
        capacity_threshold: usize,
        contention_threshold: u64,
    ) -> Self {
        Self::with_hysteresis(n, mode, capacity_threshold, contention_threshold, 0, 1)
    }

    /// Creates an adaptive lock with every knob explicit, including the
    /// hysteresis band of the reverse leg: the reverse trigger arms only
    /// after `quiet_period` consecutive tree releases during which live
    /// sessions and concurrently announced tree acquirers both stayed below
    /// `low_watermark`.  `low_watermark == 0` disables the reverse leg.
    ///
    /// # Panics
    /// Panics if `n == 0`.  When the reverse leg is enabled
    /// (`low_watermark > 0`), additionally panics if `quiet_period` is zero
    /// (it would fire instantly), exceeds `u32::MAX` (the packed streak
    /// counter saturates there), or if `low_watermark` is not strictly below
    /// `capacity_threshold` (the hysteresis band must separate the two
    /// triggers).
    #[must_use]
    pub fn with_hysteresis(
        n: usize,
        mode: ScanMode,
        capacity_threshold: usize,
        contention_threshold: u64,
        low_watermark: usize,
        quiet_period: u64,
    ) -> Self {
        Self::with_hysteresis_and_strategy(
            n,
            mode,
            capacity_threshold,
            contention_threshold,
            low_watermark,
            quiet_period,
            crate::wait::default_strategy(),
        )
    }

    /// [`AdaptiveBakery::with_hysteresis`] with an explicit [`WaitStrategy`].
    ///
    /// One strategy instance is shared by the flat plane, every tree node and
    /// the facade's own drain-phase guard site (each in its own namespace), so
    /// a parked waiter anywhere in the composite answers to the same waiter
    /// table.
    ///
    /// # Panics
    /// As [`AdaptiveBakery::with_hysteresis`].
    #[must_use]
    pub fn with_hysteresis_and_strategy(
        n: usize,
        mode: ScanMode,
        capacity_threshold: usize,
        contention_threshold: u64,
        low_watermark: usize,
        quiet_period: u64,
        strategy: Arc<dyn WaitStrategy>,
    ) -> Self {
        assert!(n > 0, "a lock needs at least one process slot");
        if low_watermark > 0 {
            assert!(quiet_period > 0, "a zero quiet period would fire instantly");
            assert!(
                quiet_period <= u64::from(u32::MAX),
                "quiet_period must fit the packed streak counter"
            );
            assert!(
                low_watermark < capacity_threshold,
                "the hysteresis band needs low_watermark ({low_watermark}) strictly below \
                 capacity_threshold ({capacity_threshold}), or the triggers chase each other"
            );
        }
        Self {
            flat: BakeryPlusPlusLock::with_bound_mode_and_strategy(
                n,
                crate::bakery_pp::DEFAULT_PP_BOUND,
                mode,
                Arc::clone(&strategy),
            ),
            tree: TreeBakery::with_config_and_strategy(
                n,
                DEFAULT_TREE_ARITY.min(n.max(2)),
                mode,
                Arc::clone(&strategy),
            ),
            epoch: AtomicU64::new(EPOCH_FLAT),
            flat_active: AtomicU64::new(0),
            tree_active: AtomicU64::new(0),
            route: (0..n).map(|_| AtomicU64::new(EPOCH_FLAT)).collect(),
            announce: (0..n).map(|_| AtomicU64::new(ANNOUNCE_NONE)).collect(),
            capacity_threshold,
            contention_threshold,
            low_watermark,
            quiet_period,
            quiet_streak: AtomicU64::new(0),
            flat_waits_baseline: AtomicU64::new(0),
            waits: WaitHandle::new(strategy),
            slots: SlotAllocator::new(n),
            stats: LockStats::new(),
        }
    }

    /// The facade's wait plane (drain-phase guard site).
    #[must_use]
    pub fn wait_plane(&self) -> &WaitHandle {
        &self.waits
    }

    /// The current epoch **word** — `(cycle << 2) | phase`, strictly
    /// monotone across the lock's lifetime.  Decompose with [`epoch_phase`]
    /// and [`epoch_cycle`].
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst) // mem: epoch-cycle
    }

    /// The current phase of the epoch cycle.
    #[must_use]
    pub fn epoch_phase(&self) -> u64 {
        epoch_phase(self.epoch())
    }

    /// How many full `FLAT → TREE → FLAT` round trips have completed before
    /// the current phase.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        epoch_cycle(self.epoch())
    }

    /// True while the lock currently resides on the tree plane (`TREE`, or
    /// `DRAIN_TREE` while the reverse drain is still in flight).  This
    /// reports the **current plane**, not "ever migrated": after a completed
    /// reverse migration it is `false` again — use
    /// [`LockStats::migrations_forward`] for the history.
    #[must_use]
    pub fn has_migrated(&self) -> bool {
        matches!(self.epoch_phase(), EPOCH_TREE | EPOCH_DRAIN_TREE)
    }

    /// The flat plane (the `FLAT`-phase route).
    #[must_use]
    pub fn flat(&self) -> &BakeryPlusPlusLock {
        &self.flat
    }

    /// The tree plane (the `TREE`-phase route).
    #[must_use]
    pub fn tree(&self) -> &TreeBakery {
        &self.tree
    }

    /// The live-session threshold that triggers the forward migration.
    #[must_use]
    pub fn capacity_threshold(&self) -> usize {
        self.capacity_threshold
    }

    /// The per-residency flat doorway-wait threshold that triggers the
    /// forward migration.
    #[must_use]
    pub fn contention_threshold(&self) -> u64 {
        self.contention_threshold
    }

    /// The hysteresis low watermark of the reverse trigger (0 = reverse leg
    /// disabled).
    #[must_use]
    pub fn low_watermark(&self) -> usize {
        self.low_watermark
    }

    /// Consecutive quiet tree releases required to arm the reverse trigger.
    #[must_use]
    pub fn quiet_period(&self) -> u64 {
        self.quiet_period
    }

    /// Requests the forward (flat→tree) migration now (no-op unless the
    /// phase is `FLAT`; normally fired by the thresholds).  The handoff
    /// still drains in-flight flat acquisitions before any process enters
    /// through the tree.
    pub fn trigger_migration(&self) {
        let word = self.epoch.load(Ordering::SeqCst); // mem: epoch-cycle
        if epoch_phase(word) == EPOCH_FLAT {
            self.advance_epoch(word);
        }
    }

    /// Requests the reverse (tree→flat) migration now, bypassing the
    /// hysteresis band (no-op unless the phase is `TREE`).  The handoff
    /// still drains in-flight tree acquisitions before any process re-enters
    /// through the flat plane.
    pub fn trigger_reverse_migration(&self) {
        let word = self.epoch.load(Ordering::SeqCst); // mem: epoch-cycle
        if epoch_phase(word) == EPOCH_TREE {
            self.advance_epoch(word);
        }
    }

    /// The one epoch transition: CAS `word → word + 1`, then wake every
    /// acquirer parked on the drain-phase guard site (the flip is exactly the
    /// store their predicate watches).  Returns whether this caller won the
    /// CAS.
    fn advance_epoch(&self, word: u64) -> bool {
        let won = self
            .epoch
            .compare_exchange(word, word + 1, Ordering::SeqCst, Ordering::SeqCst) // mem: epoch-cycle
            .is_ok();
        if won {
            self.waits.notify(self.waits.guard());
        }
        won
    }

    /// Live leased sessions (`attaches − detaches`).
    fn live_sessions(&self) -> u64 {
        self.stats.attaches().saturating_sub(self.stats.detaches())
    }

    /// True when either forward trigger currently fires.  Contention is
    /// measured per flat residency: the baseline is re-captured at every
    /// reverse flip, so waits suffered before a round trip cannot re-trigger
    /// the next one.
    fn should_migrate(&self) -> bool {
        let residency_waits = self
            .flat
            .stats()
            .doorway_waits()
            .saturating_sub(self.flat_waits_baseline.load(Ordering::SeqCst)); // mem: epoch-cycle
        self.live_sessions() as usize >= self.capacity_threshold
            || residency_waits >= self.contention_threshold
    }

    /// Fires the forward trigger if a threshold is crossed while `word` (a
    /// `FLAT`-phase epoch word) is still current.
    fn maybe_trigger_forward(&self, word: u64) {
        if self.should_migrate() {
            self.advance_epoch(word);
        }
    }

    /// One hysteresis observation, made on every release through the tree
    /// route: `remaining` is the number of still-announced tree acquirers
    /// (the O(1) doorway-contention proxy).  Quiet observations accumulate
    /// in the residency-tagged streak word; a loud one zeroes it;
    /// `quiet_period` consecutive quiet ones of the *same* residency fire
    /// the reverse trigger.
    fn observe_tree_release(&self, remaining: u64) {
        if self.low_watermark == 0 {
            return; // reverse leg disabled
        }
        let word = self.epoch.load(Ordering::SeqCst); // mem: epoch-cycle
        if epoch_phase(word) != EPOCH_TREE {
            return;
        }
        // The streak word carries the residency it was observed in: tag 0
        // (used by the forward flip's reset) can never equal a TREE word, so
        // it always reads as "no streak yet".
        let tag = (word & u64::from(u32::MAX)) << 32;
        let low = self.low_watermark as u64;
        if self.live_sessions() >= low || remaining >= low {
            // Loud: zero this residency's streak.  The common contended case
            // finds it already zero — keep the hot release path store-free.
            if self.quiet_streak.load(Ordering::SeqCst) != tag { // mem: epoch-cycle
                self.quiet_streak.store(tag, Ordering::SeqCst); // mem: epoch-cycle
            }
            return;
        }
        // Quiet: bump the streak, but only under our own residency's tag — a
        // count started in another residency (or by a release preempted
        // across a round trip) restarts at 1 instead of being inherited.
        let mut current = self.quiet_streak.load(Ordering::SeqCst); // mem: epoch-cycle
        loop {
            let count = if current & !u64::from(u32::MAX) == tag {
                (current & u64::from(u32::MAX)).saturating_add(1)
            } else {
                1
            };
            match self.quiet_streak.compare_exchange(
                current,
                tag | count.min(u64::from(u32::MAX)),
                Ordering::SeqCst, // mem: epoch-cycle
                Ordering::SeqCst, // mem: epoch-cycle
            ) {
                Ok(_) => {
                    if count >= self.quiet_period {
                        self.advance_epoch(word);
                    }
                    return;
                }
                Err(actual) => current = actual,
            }
        }
    }

    /// One drain-helping step for the drain phase observed in `word`: flip
    /// `DRAIN_FLAT → TREE` (or `DRAIN_TREE → FLAT`) once the draining plane
    /// is quiescent.  Any process that observes a drain phase helps, so the
    /// handoff needs no dedicated migrator thread.
    fn help_drain(&self, word: u64) {
        let draining = match epoch_phase(word) {
            EPOCH_DRAIN => &self.flat_active,
            EPOCH_DRAIN_TREE => &self.tree_active,
            _ => return,
        };
        if draining.load(Ordering::SeqCst) != 0 { // mem: epoch-cycle
            return;
        }
        // Re-arm the next residency's trigger baselines *before* the flip:
        // a stale helper re-running these stores can only delay a later
        // trigger (it writes current values), never make one fire early.
        if epoch_phase(word) == EPOCH_DRAIN {
            // Entering TREE: no quiet streak from an earlier cycle may
            // survive into this residency (the spec's NoFlapStaleArming).
            self.quiet_streak.store(0, Ordering::SeqCst); // mem: epoch-cycle
        } else {
            // Entering FLAT: contention restarts from here.
            self.flat_waits_baseline
                .store(self.flat.stats().doorway_waits(), Ordering::SeqCst); // mem: epoch-cycle
        }
        if self.advance_epoch(word) {
            if epoch_phase(word) == EPOCH_DRAIN {
                self.stats.record_migration_forward();
            } else {
                self.stats.record_migration_reverse();
            }
        }
    }

    /// Folds the flat plane's and every tree node's statistics, with
    /// `cs_entries` pinned to the adaptive facade's own counter (the PR 3
    /// facade-only rule: entries are counted once, at the outermost facade,
    /// and never double across any number of migrations).
    #[must_use]
    pub fn aggregate_snapshot(&self) -> StatsSnapshot {
        let mut total = self.stats.snapshot();
        let facade_cs_entries = total.cs_entries;
        total.merge(&self.flat.stats().snapshot());
        total.merge(&self.tree.aggregate_snapshot());
        total.cs_entries = facade_cs_entries;
        total
    }
}

impl RawMutexAlgorithm for AdaptiveBakery {
    fn capacity(&self) -> usize {
        self.route.len()
    }

    fn acquire(&self, pid: usize) {
        assert!(pid < self.capacity(), "pid {pid} out of range");
        let word = self.epoch.load(Ordering::SeqCst); // mem: epoch-cycle
        if epoch_phase(word) == EPOCH_FLAT {
            self.maybe_trigger_forward(word);
        }
        // One episode: every arm of the loop waits on the same epoch word,
        // so escalation carries across route retries (like Bakery++'s
        // `L1`/`Reset` loop).
        let mut token = WaitToken::new();
        loop {
            let word = self.epoch.load(Ordering::SeqCst); // mem: epoch-cycle
            match epoch_phase(word) {
                EPOCH_TREE => {
                    // Announce, then re-check the FULL word (Dekker handshake
                    // with the reverse drainer's epoch-advance / active-read;
                    // the cycle tag defeats the stale-TREE ABA).  The ledger
                    // write precedes the increment so a crashed pid's reaper
                    // rolls back at most what was announced for it.
                    self.announce[pid].store(ANNOUNCE_TREE, Ordering::SeqCst); // mem: epoch-cycle
                    self.tree_active.fetch_add(1, Ordering::SeqCst); // mem: epoch-cycle
                    if self.epoch.load(Ordering::SeqCst) == word { // mem: epoch-cycle
                        self.tree.acquire(pid);
                        self.route[pid].store(EPOCH_TREE, Ordering::SeqCst); // mem: epoch-cycle
                        return;
                    }
                    // Lost the race to the drainer: withdraw and re-route.
                    self.tree_active.fetch_sub(1, Ordering::SeqCst); // mem: epoch-cycle
                    self.announce[pid].store(ANNOUNCE_NONE, Ordering::SeqCst); // mem: epoch-cycle
                }
                EPOCH_FLAT => {
                    // The mirror handshake against the forward drainer.
                    self.announce[pid].store(ANNOUNCE_FLAT, Ordering::SeqCst); // mem: epoch-cycle
                    self.flat_active.fetch_add(1, Ordering::SeqCst); // mem: epoch-cycle
                    if self.epoch.load(Ordering::SeqCst) == word { // mem: epoch-cycle
                        self.flat.acquire(pid);
                        self.route[pid].store(EPOCH_FLAT, Ordering::SeqCst); // mem: epoch-cycle
                        return;
                    }
                    self.flat_active.fetch_sub(1, Ordering::SeqCst); // mem: epoch-cycle
                    self.announce[pid].store(ANNOUNCE_NONE, Ordering::SeqCst); // mem: epoch-cycle
                }
                _ => {
                    self.help_drain(word);
                    // Park on the guard site until the epoch moves: the flip
                    // CAS (ours just above, or any helper's) notifies it.
                    self.waits.wait(self.waits.guard(), &mut token, &mut || {
                        self.epoch.load(Ordering::SeqCst) == word // mem: epoch-cycle
                    });
                }
            }
        }
    }

    fn release(&self, pid: usize) {
        if self.route[pid].load(Ordering::SeqCst) == EPOCH_TREE { // mem: epoch-cycle
            self.tree.release(pid);
            let remaining = self.tree_active.fetch_sub(1, Ordering::SeqCst) - 1; // mem: epoch-cycle
            self.announce[pid].store(ANNOUNCE_NONE, Ordering::SeqCst); // mem: epoch-cycle
            self.observe_tree_release(remaining);
        } else {
            self.flat.release(pid);
            self.flat_active.fetch_sub(1, Ordering::SeqCst); // mem: epoch-cycle
            self.announce[pid].store(ANNOUNCE_NONE, Ordering::SeqCst); // mem: epoch-cycle
            let word = self.epoch.load(Ordering::SeqCst); // mem: epoch-cycle
            if epoch_phase(word) == EPOCH_FLAT {
                self.maybe_trigger_forward(word);
            }
        }
        // This decrement may have been the one an in-flight drain was
        // waiting on; finishing the flip here (instead of leaving it to the
        // next live acquirer) is what wakes acquirers parked on the guard
        // site, since the draining plane has no acquirer left to help.
        let word = self.epoch.load(Ordering::SeqCst); // mem: epoch-cycle
        if matches!(epoch_phase(word), EPOCH_DRAIN | EPOCH_DRAIN_TREE) {
            self.help_drain(word);
        }
        // Facade-level release pulse for async lock futures registered via
        // `wait_handle()` (the planes pulse their own namespaces only).
        self.waits.notify(self.waits.release());
    }

    fn try_acquire(&self, pid: usize) -> bool {
        assert!(pid < self.capacity(), "pid {pid} out of range");
        let word = self.epoch.load(Ordering::SeqCst); // mem: epoch-cycle
        match epoch_phase(word) {
            EPOCH_TREE => {
                self.announce[pid].store(ANNOUNCE_TREE, Ordering::SeqCst); // mem: epoch-cycle
                self.tree_active.fetch_add(1, Ordering::SeqCst); // mem: epoch-cycle
                if self.epoch.load(Ordering::SeqCst) == word && self.tree.try_acquire(pid) { // mem: epoch-cycle
                    self.route[pid].store(EPOCH_TREE, Ordering::SeqCst); // mem: epoch-cycle
                    true
                } else {
                    self.tree_active.fetch_sub(1, Ordering::SeqCst); // mem: epoch-cycle
                    self.announce[pid].store(ANNOUNCE_NONE, Ordering::SeqCst); // mem: epoch-cycle
                    false
                }
            }
            EPOCH_FLAT => {
                self.announce[pid].store(ANNOUNCE_FLAT, Ordering::SeqCst); // mem: epoch-cycle
                self.flat_active.fetch_add(1, Ordering::SeqCst); // mem: epoch-cycle
                if self.epoch.load(Ordering::SeqCst) == word && self.flat.try_acquire(pid) { // mem: epoch-cycle
                    self.route[pid].store(EPOCH_FLAT, Ordering::SeqCst); // mem: epoch-cycle
                    true
                } else {
                    self.flat_active.fetch_sub(1, Ordering::SeqCst); // mem: epoch-cycle
                    self.announce[pid].store(ANNOUNCE_NONE, Ordering::SeqCst); // mem: epoch-cycle
                    false
                }
            }
            // Mid-handoff: conservatively fail rather than wait the drain out.
            _ => {
                self.help_drain(word);
                false
            }
        }
    }

    fn crash_abort(&self, pid: usize) -> bool {
        assert!(pid < self.capacity(), "pid {pid} out of range");
        // Epoch-aware rollback, ledger first: if the crashed pid died with an
        // outstanding announce-counter increment (announced, then blocked in
        // a plane doorway), every later drain would wedge at `active != 0`.
        // The ledger says exactly which counter carries it — the epoch may
        // have moved on since the pid announced, so the *current* phase must
        // not be consulted.
        match self.announce[pid].swap(ANNOUNCE_NONE, Ordering::SeqCst) { // mem: epoch-cycle
            ANNOUNCE_FLAT => {
                self.flat_active.fetch_sub(1, Ordering::SeqCst); // mem: epoch-cycle
            }
            ANNOUNCE_TREE => {
                self.tree_active.fetch_sub(1, Ordering::SeqCst); // mem: epoch-cycle
            }
            _ => {}
        }
        // Pre-CS the pid holds no node on either plane, so a blanket
        // register reset is safe and covers every crash point — including a
        // pid that died before announcing at all (both resets are then
        // writes of zero over zero).
        self.flat.crash_reset(pid);
        self.tree.crash_reset_path(pid);
        self.stats.record_crash_abort();
        // The rollback may have been the last announce the in-flight drain
        // was waiting on; help it over the line rather than leaving the flip
        // to the next live acquirer.
        self.help_drain(self.epoch.load(Ordering::SeqCst)); // mem: epoch-cycle
        true
    }

    fn algorithm_name(&self) -> &'static str {
        "adaptive-bakery"
    }

    fn shared_word_count(&self) -> usize {
        // Both planes exist for the lock's whole lifetime, plus the epoch,
        // the two announce counters, the quiet streak and the contention
        // baseline.
        self.flat.shared_word_count() + self.tree.shared_word_count() + 5
    }

    fn register_bound(&self) -> Option<u64> {
        // Tickets never exceed the larger of the two planes' bounds.
        Some(self.flat.bound().max(self.tree.bound()))
    }

    fn slot_allocator(&self) -> &Arc<SlotAllocator> {
        &self.slots
    }

    fn stats(&self) -> &LockStats {
        &self.stats
    }

    fn wait_handle(&self) -> Option<&WaitHandle> {
        Some(&self.waits)
    }

    fn as_raw(&self) -> &dyn RawMutexAlgorithm {
        self
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};

    #[test]
    fn starts_flat_and_stays_flat_uncontended() {
        let lock = AdaptiveBakery::new(8);
        let slot = lock.register().unwrap();
        for _ in 0..20 {
            let _g = lock.lock(&slot);
        }
        assert_eq!(lock.epoch(), EPOCH_FLAT);
        assert_eq!(lock.stats().cs_entries(), 20);
        assert_eq!(lock.flat().stats().fast_path_hits(), 20);
        assert_eq!(lock.tree().aggregate_snapshot().cs_entries, 0);
        assert_eq!(lock.stats().migrations_forward(), 0);
    }

    #[test]
    fn manual_trigger_migrates_on_next_acquire() {
        let lock = AdaptiveBakery::new(8);
        let slot = lock.register().unwrap();
        drop(lock.lock(&slot));
        lock.trigger_migration();
        assert_eq!(lock.epoch_phase(), EPOCH_DRAIN);
        assert!(!lock.has_migrated(), "mid forward drain the lock is still flat-resident");
        drop(lock.lock(&slot)); // the acquirer helps drain, then routes tree
        assert!(lock.has_migrated());
        assert_eq!(lock.stats().migrations_forward(), 1);
        // Post-migration traffic exercises the tree only.
        let before = lock.tree().level_snapshot(0).fast_path_hits;
        drop(lock.lock(&slot));
        assert!(lock.tree().level_snapshot(0).fast_path_hits > before);
        assert_eq!(lock.stats().cs_entries(), 3);
    }

    #[test]
    fn crash_abort_rolls_back_the_announce_ledger_and_helps_the_drain() {
        let lock = AdaptiveBakery::new(8);
        // Emulate pid 3 dying right after its flat-plane announce: the
        // increment is outstanding, the registers never got written.
        lock.announce[3].store(ANNOUNCE_FLAT, Ordering::SeqCst);
        lock.flat_active.fetch_add(1, Ordering::SeqCst);
        // A forward migration now wedges in DRAIN_FLAT: the drain waits on
        // `flat_active == 0`, which the dead pid can never deliver…
        lock.trigger_migration();
        assert_eq!(lock.epoch_phase(), EPOCH_DRAIN);
        // …until the reaper crash-aborts it: ledger rollback + drain help.
        assert!(lock.crash_abort(3));
        assert_eq!(lock.flat_active.load(Ordering::SeqCst), 0);
        assert_eq!(lock.announce[3].load(Ordering::SeqCst), ANNOUNCE_NONE);
        assert_eq!(lock.epoch_phase(), EPOCH_TREE, "the abort completed the drain");
        assert_eq!(lock.stats().crash_aborts(), 1);
        assert_eq!(lock.stats().migrations_forward(), 1);
        // The lock flows again, now on the tree plane.
        let slot = lock.register_exact(0).unwrap();
        drop(lock.lock(&slot));
        assert_eq!(lock.stats().cs_entries(), 1);
    }

    #[test]
    fn crash_abort_on_an_unannounced_pid_is_a_clean_register_wipe() {
        let lock = AdaptiveBakery::new(4);
        assert!(lock.crash_abort(2));
        assert_eq!(lock.flat_active.load(Ordering::SeqCst), 0);
        assert_eq!(lock.tree_active.load(Ordering::SeqCst), 0);
        assert_eq!(lock.stats().crash_aborts(), 1);
        let slot = lock.register_exact(2).unwrap();
        drop(lock.lock(&slot));
    }

    #[test]
    fn capacity_threshold_uses_session_counters() {
        let lock = AdaptiveBakery::with_config(8, ScanMode::Packed, 3, u64::MAX);
        let slot = lock.register().unwrap();
        lock.stats().record_attach();
        lock.stats().record_attach();
        drop(lock.lock(&slot));
        assert_eq!(lock.epoch(), EPOCH_FLAT, "below the threshold");
        lock.stats().record_attach();
        drop(lock.lock(&slot));
        assert!(lock.has_migrated(), "3 live sessions reach the threshold");
    }

    #[test]
    fn detaches_count_against_the_live_threshold() {
        let lock = AdaptiveBakery::with_config(8, ScanMode::Packed, 2, u64::MAX);
        for _ in 0..5 {
            lock.stats().record_attach();
            lock.stats().record_detach();
        }
        let slot = lock.register().unwrap();
        drop(lock.lock(&slot));
        assert_eq!(lock.epoch(), EPOCH_FLAT, "churn is not live capacity");
    }

    #[test]
    fn quiet_period_drives_the_reverse_migration() {
        // low_watermark 2, quiet_period 4: with no live sessions and no
        // concurrent acquirers, the 4th quiet tree release fires the reverse
        // trigger and the next acquisition helps the drain flip back to FLAT.
        let lock = AdaptiveBakery::with_hysteresis(4, ScanMode::Packed, 3, u64::MAX, 2, 4);
        let slot = lock.register().unwrap();
        lock.trigger_migration();
        drop(lock.lock(&slot)); // helps the forward drain, enters via tree
        assert!(lock.has_migrated()); // that release was quiet observation 1
        for i in 0..2 {
            drop(lock.lock(&slot));
            assert_eq!(lock.epoch_phase(), EPOCH_TREE, "streak {} below period", i + 2);
        }
        // The 4th quiet release reaches quiet_period: reverse triggered —
        // and the releasing thread itself completes the drain (tree_active
        // is already zero at that point), so the flip lands at release time.
        drop(lock.lock(&slot));
        assert_eq!(lock.epoch_phase(), EPOCH_FLAT);
        drop(lock.lock(&slot)); // enters via the flat plane again
        assert_eq!(lock.epoch_phase(), EPOCH_FLAT);
        assert_eq!(lock.cycle(), 1, "one full round trip");
        assert!(!lock.has_migrated(), "has_migrated reports the current plane");
        assert_eq!(lock.stats().migrations_forward(), 1);
        assert_eq!(lock.stats().migrations_reverse(), 1);
        // The facade-only cs_entries rule holds across the whole round trip.
        assert_eq!(lock.stats().cs_entries(), 5);
        assert_eq!(lock.aggregate_snapshot().cs_entries, 5);
        assert_eq!(lock.aggregate_snapshot().migrations_reverse, 1);
    }

    #[test]
    fn live_sessions_above_the_low_watermark_hold_the_tree() {
        let lock = AdaptiveBakery::with_hysteresis(4, ScanMode::Packed, 3, u64::MAX, 1, 2);
        let slot = lock.register().unwrap();
        lock.trigger_migration();
        drop(lock.lock(&slot));
        assert!(lock.has_migrated());
        // One live session >= low_watermark 1: every release is loud.
        lock.stats().record_attach();
        for _ in 0..10 {
            drop(lock.lock(&slot));
        }
        assert_eq!(lock.epoch_phase(), EPOCH_TREE, "never quiet while leased");
        // Detach: releases quieten; the second one triggers the reverse and
        // completes the drain on its own release path.
        lock.stats().record_detach();
        drop(lock.lock(&slot));
        drop(lock.lock(&slot));
        assert_eq!(lock.epoch_phase(), EPOCH_FLAT);
        assert_eq!(lock.stats().migrations_reverse(), 1);
    }

    #[test]
    fn epoch_word_is_strictly_monotone_across_two_round_trips() {
        let lock = AdaptiveBakery::with_hysteresis(4, ScanMode::Packed, 3, u64::MAX, 2, 1);
        let slot = lock.register().unwrap();
        let mut last = lock.epoch();
        assert_eq!(last, 0);
        for round in 0..2 {
            lock.trigger_migration(); // 4c -> 4c+1
            // Acquire helps the forward drain (-> TREE, 4c+2), enters via the
            // tree; quiet_period 1 makes its release trigger the reverse
            // (-> DRAIN_TREE, 4c+3) and complete the drain in the same
            // release (-> FLAT, 4(c+1)) — the whole round trip in one
            // lock/unlock.
            drop(lock.lock(&slot));
            assert_eq!(lock.epoch(), 4 * (round + 1), "FLAT of cycle {}", round + 1);
            drop(lock.lock(&slot)); // plain flat entry
            assert_eq!(lock.epoch(), 4 * (round + 1));
            assert!(lock.epoch() > last, "the word never repeats");
            last = lock.epoch();
        }
        assert_eq!(lock.stats().migrations_forward(), 2);
        assert_eq!(lock.stats().migrations_reverse(), 2);
        assert_eq!(lock.cycle(), 2);
        assert_eq!(lock.aggregate_snapshot().overflow_attempts, 0);
    }

    #[test]
    fn reverse_trigger_is_a_noop_outside_the_tree_phase() {
        let lock = AdaptiveBakery::new(4);
        lock.trigger_reverse_migration();
        assert_eq!(lock.epoch(), EPOCH_FLAT, "no reverse from FLAT");
        lock.trigger_migration();
        lock.trigger_reverse_migration();
        assert_eq!(lock.epoch_phase(), EPOCH_DRAIN, "no reverse mid forward drain");
    }

    #[test]
    fn forward_contention_baseline_resets_across_a_round_trip() {
        // Trip forward on contention, come back on quiet, and verify the old
        // contention cannot instantly re-trigger (flap) the next forward leg.
        let lock = AdaptiveBakery::with_hysteresis(4, ScanMode::Packed, 3, 10, 2, 1);
        let slot = lock.register().unwrap();
        lock.flat().stats().record_doorway_waits(50); // past the threshold
        // This acquire fires the forward trigger, self-helps the drain and
        // enters via the tree; quiet_period 1 makes its release trigger the
        // reverse straight away and complete the drain on the way out.
        drop(lock.lock(&slot));
        assert_eq!(lock.epoch_phase(), EPOCH_FLAT, "round trip complete");
        assert_eq!(lock.stats().migrations_forward(), 1);
        drop(lock.lock(&slot)); // plain flat entry
        assert_eq!(lock.epoch_phase(), EPOCH_FLAT);
        // The 50 stale wait iterations are behind the new baseline now.
        drop(lock.lock(&slot));
        assert_eq!(lock.epoch_phase(), EPOCH_FLAT, "no flap from stale contention");
        lock.flat().stats().record_doorway_waits(10); // fresh residency waits
        // With quiet_period 1 the re-triggered round trip completes inside
        // this one lock/unlock; the forward counter is the evidence.
        drop(lock.lock(&slot));
        assert_eq!(lock.stats().migrations_forward(), 2, "fresh contention re-triggers");
        assert_eq!(lock.stats().migrations_reverse(), 2);
    }

    #[test]
    fn with_config_disables_the_reverse_leg() {
        let lock = AdaptiveBakery::with_config(4, ScanMode::Packed, 2, u64::MAX);
        assert_eq!(lock.low_watermark(), 0);
        let slot = lock.register().unwrap();
        lock.trigger_migration();
        for _ in 0..50 {
            drop(lock.lock(&slot));
        }
        assert_eq!(lock.epoch_phase(), EPOCH_TREE, "quiet forever, still tree");
        assert_eq!(lock.stats().migrations_reverse(), 0);
    }

    #[test]
    #[should_panic(expected = "strictly below")]
    fn low_watermark_must_sit_below_the_capacity_threshold() {
        let _ = AdaptiveBakery::with_hysteresis(8, ScanMode::Packed, 3, u64::MAX, 3, 4);
    }

    #[test]
    fn migration_preserves_mutual_exclusion_mid_workload() {
        // 4 threads hammer the lock; one of them triggers the migration
        // mid-run, so acquisitions cross the FLAT -> DRAIN -> TREE handoff
        // under real contention.  (Forward-only config: the one-way assertions
        // below would race a hysteresis-driven reverse on a serialised runner.)
        let lock = Arc::new(AdaptiveBakery::with_config(4, ScanMode::Packed, 4, u64::MAX));
        let in_cs = StdAtomicU64::new(0);
        let total = StdAtomicU64::new(0);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let lock = Arc::clone(&lock);
                let in_cs = &in_cs;
                let total = &total;
                scope.spawn(move || {
                    let slot = lock.register().unwrap();
                    for i in 0..300 {
                        if t == 0 && i == 150 {
                            lock.trigger_migration();
                        }
                        let _g = lock.lock(&slot);
                        assert_eq!(in_cs.fetch_add(1, StdOrdering::SeqCst), 0);
                        total.fetch_add(1, StdOrdering::SeqCst);
                        in_cs.fetch_sub(1, StdOrdering::SeqCst);
                    }
                });
            }
        });
        assert!(lock.has_migrated());
        assert_eq!(total.load(StdOrdering::SeqCst), 1200);
        assert_eq!(lock.stats().cs_entries(), 1200);
        let aggregate = lock.aggregate_snapshot();
        assert_eq!(aggregate.overflow_attempts, 0);
        // Facade-only cs_entries across the migration: flat + tree traffic
        // is folded for every other counter, but entries count exactly once.
        assert_eq!(aggregate.cs_entries, 1200);
        assert_eq!(aggregate.migrations_forward, 1);
        assert_eq!(lock.flat_active.load(Ordering::SeqCst), 0);
        assert_eq!(lock.tree_active.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn round_trip_preserves_mutual_exclusion_mid_workload() {
        // The same stress, but across the FULL cycle: the forward leg fires
        // mid-rush, the reverse leg fires after the churn subsides to one
        // thread, and a final burst re-exercises the flat plane of cycle 1.
        let lock = Arc::new(AdaptiveBakery::with_hysteresis(
            4,
            ScanMode::Packed,
            3,
            u64::MAX,
            2,
            8,
        ));
        let in_cs = StdAtomicU64::new(0);
        let total = StdAtomicU64::new(0);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let lock = Arc::clone(&lock);
                let in_cs = &in_cs;
                let total = &total;
                scope.spawn(move || {
                    let slot = lock.register().unwrap();
                    let rounds = if t == 0 { 400 } else { 100 };
                    for i in 0..rounds {
                        if t == 0 && i == 50 {
                            lock.trigger_migration();
                        }
                        let _g = lock.lock(&slot);
                        assert_eq!(in_cs.fetch_add(1, StdOrdering::SeqCst), 0);
                        total.fetch_add(1, StdOrdering::SeqCst);
                        in_cs.fetch_sub(1, StdOrdering::SeqCst);
                    }
                });
            }
        });
        // Thread 0's long solo tail is quiet (no live sessions, no concurrent
        // acquirers), so the reverse leg must have completed.
        assert!(!lock.has_migrated(), "the tail must migrate back to flat");
        assert_eq!(lock.stats().migrations_forward(), 1);
        assert_eq!(lock.stats().migrations_reverse(), 1);
        assert_eq!(total.load(StdOrdering::SeqCst), 700);
        assert_eq!(lock.stats().cs_entries(), 700);
        assert_eq!(lock.aggregate_snapshot().cs_entries, 700);
        assert_eq!(lock.flat_active.load(Ordering::SeqCst), 0);
        assert_eq!(lock.tree_active.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn try_acquire_routes_like_acquire() {
        let lock = AdaptiveBakery::new(4);
        let slot = lock.register().unwrap();
        {
            let g = lock.try_lock(&slot).expect("uncontended flat try");
            assert_eq!(g.pid(), 0);
        }
        lock.trigger_migration();
        assert!(
            !lock.try_acquire(slot.pid()),
            "mid-drain try_acquire conservatively fails (and helps drain)"
        );
        assert!(lock.has_migrated(), "the failed try helped the drain flip");
        {
            let _g = lock.try_lock(&slot).expect("uncontended tree try");
        }
        assert_eq!(lock.stats().cs_entries(), 2);
        assert_eq!(lock.flat_active.load(Ordering::SeqCst), 0);
        assert_eq!(lock.tree_active.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn small_capacity_clamps_tree_arity() {
        let lock = AdaptiveBakery::new(2);
        let slot = lock.register().unwrap();
        lock.trigger_migration();
        drop(lock.lock(&slot));
        assert!(lock.has_migrated());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_pid_panics() {
        let lock = AdaptiveBakery::new(2);
        lock.acquire(5);
    }

    proptest! {
        /// Flapping-proofness under random attach/detach/CS churn with
        /// adversarial threshold settings: migrations strictly alternate
        /// (|forward − reverse| ≤ 1), every reverse migration consumed at
        /// least `quiet_period` releases (so two migrations can never land
        /// inside one hysteresis quiet period), and no recycled pid is ever
        /// leased to two live sessions across any number of round trips.
        #[test]
        fn hysteresis_never_flaps_under_adversarial_churn(
            capacity_threshold in 2usize..5,
            low_fraction in 1usize..4,
            quiet_period in 1u64..12,
            threads in 2usize..5,
            churns in 4u64..20,
            cs_per_session in 1u64..4,
            seed in 0u64..u64::MAX,
        ) {
            let low_watermark = (capacity_threshold * low_fraction / 4).max(1)
                .min(capacity_threshold - 1);
            let lock = Arc::new(AdaptiveBakery::with_hysteresis(
                4,
                ScanMode::Packed,
                capacity_threshold,
                u64::MAX,
                low_watermark,
                quiet_period,
            ));
            let plane = crate::session::SessionPlane::new(
                Arc::clone(&lock) as Arc<dyn RawMutexAlgorithm>
            );
            let live: std::sync::Mutex<std::collections::HashSet<usize>> =
                std::sync::Mutex::new(std::collections::HashSet::new());
            let violations = StdAtomicU64::new(0);
            let in_cs = StdAtomicU64::new(0);
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let plane = &plane;
                    let lock = &lock;
                    let live = &live;
                    let violations = &violations;
                    let in_cs = &in_cs;
                    scope.spawn(move || {
                        let mut state =
                            seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                        for _ in 0..churns {
                            state = state
                                .wrapping_mul(6364136223846793005)
                                .wrapping_add(1442695040888963407);
                            if state & 8 == 0 {
                                // Adversarial manual triggers race the
                                // hysteresis machinery from every phase.
                                lock.trigger_migration();
                            }
                            let session = plane.attach();
                            if !live.lock().unwrap().insert(session.pid()) {
                                violations.fetch_add(1, StdOrdering::SeqCst);
                            }
                            for _ in 0..cs_per_session {
                                let g = session.lock();
                                if in_cs.fetch_add(1, StdOrdering::SeqCst) != 0 {
                                    violations.fetch_add(1, StdOrdering::SeqCst);
                                }
                                in_cs.fetch_sub(1, StdOrdering::SeqCst);
                                drop(g);
                            }
                            if !live.lock().unwrap().remove(&session.pid()) {
                                violations.fetch_add(1, StdOrdering::SeqCst);
                            }
                            drop(session);
                        }
                    });
                }
            });
            prop_assert_eq!(violations.load(StdOrdering::SeqCst), 0,
                "aliasing or double-CS across a migration");
            let stats = lock.stats();
            let forward = stats.migrations_forward();
            let reverse = stats.migrations_reverse();
            prop_assert!(forward.abs_diff(reverse) <= 1,
                "migrations must alternate, got {}/{}", forward, reverse);
            // Each reverse needed quiet_period consecutive quiet releases
            // after the preceding forward flip zeroed the streak.
            prop_assert!(reverse * quiet_period <= stats.cs_entries(),
                "{} reverses x quiet_period {} exceeds {} total releases",
                reverse, quiet_period, stats.cs_entries());
            // Cross-plane bookkeeping drained to zero.
            prop_assert_eq!(lock.flat_active.load(Ordering::SeqCst), 0);
            prop_assert_eq!(lock.tree_active.load(Ordering::SeqCst), 0);
            prop_assert_eq!(plane.live_sessions(), 0);
            prop_assert_eq!(stats.attaches(), stats.detaches());
            // Facade-only cs_entries across every migration in the trace.
            prop_assert_eq!(lock.aggregate_snapshot().cs_entries, stats.cs_entries());
        }
    }
}
