//! [`AdaptiveBakery`]: a flat Bakery++ that migrates to a tree under load.
//!
//! The flat packed-snapshot Bakery++ wins while few processes are live (one
//! small scan, global FCFS); the [`TreeBakery`] wins once contention or
//! membership grows (O(K·log_K N) doorway, contention resolved inside
//! subtrees).  The adaptive lock starts flat and performs a **one-way
//! quiescent handoff** to the tree when either trigger fires:
//!
//! * **leased capacity** — live sessions (`attaches − detaches`, maintained
//!   by the session plane) reach `capacity_threshold`;
//! * **observed contention** — the flat lock's cumulative doorway wait
//!   iterations reach `contention_threshold`.
//!
//! ## The handoff protocol
//!
//! Three shared words drive the migration: `epoch ∈ {FLAT, DRAIN, TREE}` and
//! `flat_active`, a count of acquisitions currently routed to the flat plane.
//!
//! ```text
//! acquire(i):                        trigger (any process):
//!   loop:                              if epoch == FLAT and threshold hit:
//!     e := epoch                         CAS epoch: FLAT -> DRAIN
//!     if e == TREE:
//!       tree.acquire(i); return      drain helper (any process, in acquire):
//!     if e == DRAIN:                   if epoch == DRAIN and flat_active == 0:
//!       help drain; retry                CAS epoch: DRAIN -> TREE
//!     # e == FLAT:
//!     flat_active += 1               release(i):
//!     if epoch != FLAT:                plane[i].release(i)
//!       flat_active -= 1; retry        if plane[i] was FLAT: flat_active -= 1
//!     flat.acquire(i); return
//! ```
//!
//! The store→load handshake mirrors the Bakery doorway's Dekker pattern: an
//! acquirer *increments `flat_active` and then re-reads `epoch`*, while the
//! drainer *writes `DRAIN` and then reads `flat_active`*.  Under the
//! interleaving semantics at least one side observes the other, so either the
//! acquirer aborts its flat route or the drainer waits for it — a flat
//! acquisition can never overlap a tree acquisition, and mutual exclusion of
//! the composite follows from mutual exclusion of each plane.  The epoch is
//! monotone (`FLAT → DRAIN → TREE`), so the argument needs no second
//! direction.  This exact handshake is modelled as a step machine in
//! `bakery-spec::adaptive` and explored exhaustively by `bakery-mc`
//! (`crates/mc/tests/adaptive_handoff.rs`).
//!
//! ## Statistics
//!
//! `cs_entries` is counted once, at the adaptive facade, exactly like the
//! tree facade does — [`AdaptiveBakery::aggregate_snapshot`] folds the flat
//! plane's and every tree node's counters but pins `cs_entries` to the
//! facade's own count, so the PR 3 facade-only rule survives the migration
//! (counted neither zero nor twice during the handoff).

use std::sync::Arc;

use crate::backoff::Backoff;
use crate::bakery_pp::BakeryPlusPlusLock;
use crate::raw::RawMutexAlgorithm;
use crate::slots::SlotAllocator;
use crate::snapshot::ScanMode;
use crate::stats::{LockStats, StatsSnapshot};
use crate::tree::{TreeBakery, DEFAULT_TREE_ARITY};
use crate::sync::{AtomicU64, Ordering};

/// Epoch value: all acquisitions route to the flat Bakery++.
pub const EPOCH_FLAT: u64 = 0;
/// Epoch value: migration triggered; the flat plane is draining.
pub const EPOCH_DRAIN: u64 = 1;
/// Epoch value: all acquisitions route to the tree.
pub const EPOCH_TREE: u64 = 2;

/// Default live-session count that triggers the migration (fraction of
/// capacity, see [`AdaptiveBakery::default_capacity_threshold`]).
const DEFAULT_CAPACITY_FRACTION: usize = 2; // capacity / 2

/// Default cumulative flat doorway-wait iterations that trigger migration.
pub const DEFAULT_CONTENTION_THRESHOLD: u64 = 1 << 14;

/// A lock that starts as a flat packed-snapshot Bakery++ and migrates, once,
/// to a [`TreeBakery`] when leased capacity or observed contention crosses a
/// threshold.
///
/// ```
/// use bakery_core::{AdaptiveBakery, RawMutexAlgorithm};
///
/// let lock = AdaptiveBakery::new(16);
/// let slot = lock.register().unwrap();
/// drop(lock.lock(&slot));
/// assert!(!lock.has_migrated());
/// lock.trigger_migration();          // or cross a threshold under load
/// drop(lock.lock(&slot));
/// assert!(lock.has_migrated());
/// assert_eq!(lock.stats().cs_entries(), 2);
/// ```
#[derive(Debug)]
pub struct AdaptiveBakery {
    flat: BakeryPlusPlusLock,
    tree: TreeBakery,
    epoch: AtomicU64,
    /// Number of acquisitions currently routed to the flat plane (incremented
    /// *before* the epoch re-check — the Dekker half of the handshake).
    flat_active: AtomicU64,
    /// Which plane each pid's current acquisition went through (SWMR: only
    /// pid's own thread writes entry `pid`).
    route: Box<[AtomicU64]>,
    capacity_threshold: usize,
    contention_threshold: u64,
    slots: Arc<SlotAllocator>,
    stats: LockStats,
}

impl AdaptiveBakery {
    /// Creates an adaptive lock for `n` processes with the default thresholds
    /// (migrate at `n / 2` live sessions — at least 2 — or after `2^14`
    /// cumulative flat doorway wait iterations) and default tree arity.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self::with_mode(n, ScanMode::Packed)
    }

    /// Creates an adaptive lock with the default thresholds and an explicit
    /// [`ScanMode`] — the constructor the registry uses, so factory-built
    /// locks can never drift from [`AdaptiveBakery::new`]'s tuning.
    #[must_use]
    pub fn with_mode(n: usize, mode: ScanMode) -> Self {
        Self::with_config(
            n,
            mode,
            Self::default_capacity_threshold(n),
            DEFAULT_CONTENTION_THRESHOLD,
        )
    }

    /// The default leased-capacity migration threshold for an `n`-slot lock:
    /// half the capacity, but at least 2 (a single live session never
    /// migrates).
    #[must_use]
    pub fn default_capacity_threshold(n: usize) -> usize {
        (n / DEFAULT_CAPACITY_FRACTION).max(2)
    }

    /// Creates an adaptive lock with every knob explicit.  The [`ScanMode`]
    /// applies to both planes; the flat plane uses the default Bakery++
    /// bound, the tree its per-node `M = K + 1`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[must_use]
    pub fn with_config(
        n: usize,
        mode: ScanMode,
        capacity_threshold: usize,
        contention_threshold: u64,
    ) -> Self {
        assert!(n > 0, "a lock needs at least one process slot");
        Self {
            flat: BakeryPlusPlusLock::with_bound_and_mode(
                n,
                crate::bakery_pp::DEFAULT_PP_BOUND,
                mode,
            ),
            tree: TreeBakery::with_config(n, DEFAULT_TREE_ARITY.min(n.max(2)), mode),
            epoch: AtomicU64::new(EPOCH_FLAT),
            flat_active: AtomicU64::new(0),
            route: (0..n).map(|_| AtomicU64::new(EPOCH_FLAT)).collect(),
            capacity_threshold,
            contention_threshold,
            slots: SlotAllocator::new(n),
            stats: LockStats::new(),
        }
    }

    /// The current migration epoch ([`EPOCH_FLAT`], [`EPOCH_DRAIN`] or
    /// [`EPOCH_TREE`]).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// True once the lock has fully handed off to the tree plane.
    #[must_use]
    pub fn has_migrated(&self) -> bool {
        self.epoch() == EPOCH_TREE
    }

    /// The flat plane (pre-migration route).
    #[must_use]
    pub fn flat(&self) -> &BakeryPlusPlusLock {
        &self.flat
    }

    /// The tree plane (post-migration route).
    #[must_use]
    pub fn tree(&self) -> &TreeBakery {
        &self.tree
    }

    /// The live-session threshold that triggers migration.
    #[must_use]
    pub fn capacity_threshold(&self) -> usize {
        self.capacity_threshold
    }

    /// The flat doorway-wait threshold that triggers migration.
    #[must_use]
    pub fn contention_threshold(&self) -> u64 {
        self.contention_threshold
    }

    /// Requests the migration now (idempotent; normally fired by the
    /// thresholds).  The handoff still drains in-flight flat acquisitions
    /// before any process enters through the tree.
    pub fn trigger_migration(&self) {
        let _ = self.epoch.compare_exchange(
            EPOCH_FLAT,
            EPOCH_DRAIN,
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
    }

    /// True when either migration trigger currently fires.
    fn should_migrate(&self) -> bool {
        let live = self
            .stats
            .attaches()
            .saturating_sub(self.stats.detaches());
        live as usize >= self.capacity_threshold
            || self.flat.stats().doorway_waits() >= self.contention_threshold
    }

    /// One drain-helping step: flip `DRAIN → TREE` once the flat plane is
    /// quiescent.  Any process that observes `DRAIN` helps, so the handoff
    /// needs no dedicated migrator thread.
    fn help_drain(&self) {
        if self.flat_active.load(Ordering::SeqCst) == 0 {
            let _ = self.epoch.compare_exchange(
                EPOCH_DRAIN,
                EPOCH_TREE,
                Ordering::SeqCst,
                Ordering::SeqCst,
            );
        }
    }

    /// Folds the flat plane's and every tree node's statistics, with
    /// `cs_entries` pinned to the adaptive facade's own counter (the PR 3
    /// facade-only rule: entries are counted once, at the outermost facade,
    /// and never double across the migration).
    #[must_use]
    pub fn aggregate_snapshot(&self) -> StatsSnapshot {
        let mut total = self.stats.snapshot();
        let facade_cs_entries = total.cs_entries;
        total.merge(&self.flat.stats().snapshot());
        total.merge(&self.tree.aggregate_snapshot());
        total.cs_entries = facade_cs_entries;
        total
    }
}

impl RawMutexAlgorithm for AdaptiveBakery {
    fn capacity(&self) -> usize {
        self.route.len()
    }

    fn acquire(&self, pid: usize) {
        assert!(pid < self.capacity(), "pid {pid} out of range");
        if self.epoch.load(Ordering::SeqCst) == EPOCH_FLAT && self.should_migrate() {
            self.trigger_migration();
        }
        let mut backoff = Backoff::new();
        loop {
            match self.epoch.load(Ordering::SeqCst) {
                EPOCH_TREE => {
                    // The epoch is monotone: once TREE, always TREE, so no
                    // re-check is needed after this load.
                    self.tree.acquire(pid);
                    self.route[pid].store(EPOCH_TREE, Ordering::SeqCst);
                    return;
                }
                EPOCH_DRAIN => {
                    self.help_drain();
                    backoff.snooze();
                }
                _ => {
                    // FLAT: announce, then re-check (Dekker handshake with
                    // the drainer's DRAIN-store / flat_active-read).
                    self.flat_active.fetch_add(1, Ordering::SeqCst);
                    if self.epoch.load(Ordering::SeqCst) == EPOCH_FLAT {
                        self.flat.acquire(pid);
                        self.route[pid].store(EPOCH_FLAT, Ordering::SeqCst);
                        return;
                    }
                    // Lost the race to the drainer: withdraw the announcement
                    // and re-route.
                    self.flat_active.fetch_sub(1, Ordering::SeqCst);
                }
            }
        }
    }

    fn release(&self, pid: usize) {
        if self.route[pid].load(Ordering::SeqCst) == EPOCH_TREE {
            self.tree.release(pid);
        } else {
            self.flat.release(pid);
            self.flat_active.fetch_sub(1, Ordering::SeqCst);
            if self.epoch.load(Ordering::SeqCst) == EPOCH_FLAT && self.should_migrate() {
                self.trigger_migration();
            }
        }
    }

    fn try_acquire(&self, pid: usize) -> bool {
        assert!(pid < self.capacity(), "pid {pid} out of range");
        match self.epoch.load(Ordering::SeqCst) {
            EPOCH_TREE => {
                if self.tree.try_acquire(pid) {
                    self.route[pid].store(EPOCH_TREE, Ordering::SeqCst);
                    true
                } else {
                    false
                }
            }
            // Mid-handoff: conservatively fail rather than wait the drain out.
            EPOCH_DRAIN => {
                self.help_drain();
                false
            }
            _ => {
                self.flat_active.fetch_add(1, Ordering::SeqCst);
                if self.epoch.load(Ordering::SeqCst) == EPOCH_FLAT && self.flat.try_acquire(pid)
                {
                    self.route[pid].store(EPOCH_FLAT, Ordering::SeqCst);
                    true
                } else {
                    self.flat_active.fetch_sub(1, Ordering::SeqCst);
                    false
                }
            }
        }
    }

    fn algorithm_name(&self) -> &'static str {
        "adaptive-bakery"
    }

    fn shared_word_count(&self) -> usize {
        // Both planes exist for the lock's whole lifetime, plus the epoch
        // and drain-count control words.
        self.flat.shared_word_count() + self.tree.shared_word_count() + 2
    }

    fn register_bound(&self) -> Option<u64> {
        // Tickets never exceed the larger of the two planes' bounds.
        Some(self.flat.bound().max(self.tree.bound()))
    }

    fn slot_allocator(&self) -> &Arc<SlotAllocator> {
        &self.slots
    }

    fn stats(&self) -> &LockStats {
        &self.stats
    }

    fn as_raw(&self) -> &dyn RawMutexAlgorithm {
        self
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};

    #[test]
    fn starts_flat_and_stays_flat_uncontended() {
        let lock = AdaptiveBakery::new(8);
        let slot = lock.register().unwrap();
        for _ in 0..20 {
            let _g = lock.lock(&slot);
        }
        assert_eq!(lock.epoch(), EPOCH_FLAT);
        assert_eq!(lock.stats().cs_entries(), 20);
        assert_eq!(lock.flat().stats().fast_path_hits(), 20);
        assert_eq!(lock.tree().aggregate_snapshot().cs_entries, 0);
    }

    #[test]
    fn manual_trigger_migrates_on_next_acquire() {
        let lock = AdaptiveBakery::new(8);
        let slot = lock.register().unwrap();
        drop(lock.lock(&slot));
        lock.trigger_migration();
        assert_eq!(lock.epoch(), EPOCH_DRAIN);
        drop(lock.lock(&slot)); // the acquirer helps drain, then routes tree
        assert!(lock.has_migrated());
        // Post-migration traffic exercises the tree only.
        let before = lock.tree().level_snapshot(0).fast_path_hits;
        drop(lock.lock(&slot));
        assert!(lock.tree().level_snapshot(0).fast_path_hits > before);
        assert_eq!(lock.stats().cs_entries(), 3);
    }

    #[test]
    fn capacity_threshold_uses_session_counters() {
        let lock = AdaptiveBakery::with_config(8, ScanMode::Packed, 3, u64::MAX);
        let slot = lock.register().unwrap();
        lock.stats().record_attach();
        lock.stats().record_attach();
        drop(lock.lock(&slot));
        assert_eq!(lock.epoch(), EPOCH_FLAT, "below the threshold");
        lock.stats().record_attach();
        drop(lock.lock(&slot));
        assert!(lock.has_migrated(), "3 live sessions reach the threshold");
    }

    #[test]
    fn detaches_count_against_the_live_threshold() {
        let lock = AdaptiveBakery::with_config(8, ScanMode::Packed, 2, u64::MAX);
        for _ in 0..5 {
            lock.stats().record_attach();
            lock.stats().record_detach();
        }
        let slot = lock.register().unwrap();
        drop(lock.lock(&slot));
        assert_eq!(lock.epoch(), EPOCH_FLAT, "churn is not live capacity");
    }

    #[test]
    fn migration_preserves_mutual_exclusion_mid_workload() {
        // 4 threads hammer the lock; one of them triggers the migration
        // mid-run, so acquisitions cross the FLAT -> DRAIN -> TREE handoff
        // under real contention.
        let lock = Arc::new(AdaptiveBakery::new(4));
        let in_cs = StdAtomicU64::new(0);
        let total = StdAtomicU64::new(0);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let lock = Arc::clone(&lock);
                let in_cs = &in_cs;
                let total = &total;
                scope.spawn(move || {
                    let slot = lock.register().unwrap();
                    for i in 0..300 {
                        if t == 0 && i == 150 {
                            lock.trigger_migration();
                        }
                        let _g = lock.lock(&slot);
                        assert_eq!(in_cs.fetch_add(1, StdOrdering::SeqCst), 0);
                        total.fetch_add(1, StdOrdering::SeqCst);
                        in_cs.fetch_sub(1, StdOrdering::SeqCst);
                    }
                });
            }
        });
        assert!(lock.has_migrated());
        assert_eq!(total.load(StdOrdering::SeqCst), 1200);
        assert_eq!(lock.stats().cs_entries(), 1200);
        let aggregate = lock.aggregate_snapshot();
        assert_eq!(aggregate.overflow_attempts, 0);
        // Facade-only cs_entries across the migration: flat + tree traffic
        // is folded for every other counter, but entries count exactly once.
        assert_eq!(aggregate.cs_entries, 1200);
        assert_eq!(lock.flat_active.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn try_acquire_routes_like_acquire() {
        let lock = AdaptiveBakery::new(4);
        let slot = lock.register().unwrap();
        {
            let g = lock.try_lock(&slot).expect("uncontended flat try");
            assert_eq!(g.pid(), 0);
        }
        lock.trigger_migration();
        assert!(
            !lock.try_acquire(slot.pid()),
            "mid-drain try_acquire conservatively fails (and helps drain)"
        );
        assert!(lock.has_migrated(), "the failed try helped the drain flip");
        {
            let _g = lock.try_lock(&slot).expect("uncontended tree try");
        }
        assert_eq!(lock.stats().cs_entries(), 2);
        assert_eq!(lock.flat_active.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn small_capacity_clamps_tree_arity() {
        let lock = AdaptiveBakery::new(2);
        let slot = lock.register().unwrap();
        lock.trigger_migration();
        drop(lock.lock(&slot));
        assert!(lock.has_migrated());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_pid_panics() {
        let lock = AdaptiveBakery::new(2);
        lock.acquire(5);
    }
}
