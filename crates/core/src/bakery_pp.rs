//! Bakery++ (Algorithm 2 of the paper) — the overflow-avoiding Bakery.
//!
//! ```text
//! constant M;
//! L1: if ∃ q : number[q] ≥ M then goto L1;
//!     choosing[i] := 1;
//!     number[i]   := maximum(number[1], …, number[N]);
//!     if number[i] ≥ M then begin
//!         number[i] := 0; choosing[i] := 0; goto L1;
//!     end
//!     else number[i] := number[i] + 1;
//!     choosing[i] := 0;
//!     for j = 1 .. N do
//! L2:     if choosing[j] ≠ 0 then goto L2;
//! L3:     if number[j] ≠ 0 and (number[j], j) < (number[i], i) then goto L3;
//!     critical section;
//!     number[i] := 0;
//! ```
//!
//! The two additions over Algorithm 1 are kept structurally identical to the
//! paper so the implementation can be audited line by line:
//!
//! 1. the **`L1` admission guard** — a process refuses to start choosing while
//!    any register already holds a value `≥ M` (an *illegitimate situation* in
//!    the paper's terminology), and
//! 2. the **pre-increment check** — the observed maximum is written to
//!    `number[i]` first (always `≤ M`, hence never an overflow), and only
//!    incremented when doing so cannot exceed `M`; otherwise the process
//!    resets its registers and retries from `L1`.
//!
//! Because the only stores are `0`, `maximum(...) ≤ M` and `maximum(...) + 1`
//! guarded by `maximum(...) < M`, no store can ever exceed `M` — the paper's
//! Theorem (§6.1), verified exhaustively by experiment **E2**, checked at
//! runtime by the register file's `Panic` overflow policy, and visible as
//! [`LockStats::overflow_attempts`] remaining zero.

use std::sync::Arc;

use crate::bakery::{await_turn_packed, await_turn_padded, choosing_site, ticket_site};
use crate::raw::{DoorwayOutcome, RawMutexAlgorithm};
use crate::registers::{OverflowPolicy, RegisterFile};
use crate::slots::SlotAllocator;
use crate::snapshot::ScanMode;
use crate::stats::LockStats;
use crate::sync::{fence, Ordering};
use crate::ticket::{Ticket, TicketOrder};
use crate::wait::{WaitHandle, WaitStrategy, WaitToken};

/// Default register bound used by [`BakeryPlusPlusLock::new`]: the largest
/// value a 16-bit register can hold.  Small enough that the overflow-avoidance
/// machinery is regularly exercised under heavy contention, large enough that
/// the reset path stays rare (§7's "highly unlikely" case).
pub const DEFAULT_PP_BOUND: u64 = u16::MAX as u64;

/// The Bakery++ lock: first-come-first-served mutual exclusion for up to `N`
/// processes with a hard guarantee that no register ever exceeds its bound.
///
/// ```
/// use bakery_core::{BakeryPlusPlusLock, RawMutexAlgorithm};
///
/// let lock = BakeryPlusPlusLock::with_bound(3, 1000);
/// let slot = lock.register().unwrap();
/// for _ in 0..10 {
///     let _guard = lock.lock(&slot);
/// }
/// assert_eq!(lock.stats().overflow_attempts(), 0);
/// ```
#[derive(Debug)]
pub struct BakeryPlusPlusLock {
    file: RegisterFile,
    slots: Arc<SlotAllocator>,
    stats: LockStats,
    bound: u64,
    waits: WaitHandle,
}

impl BakeryPlusPlusLock {
    /// Creates a Bakery++ lock for `n` processes with the default bound
    /// [`DEFAULT_PP_BOUND`].
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self::with_bound(n, DEFAULT_PP_BOUND)
    }

    /// Creates a Bakery++ lock for `n` processes whose registers are bounded
    /// by `bound` (the paper's constant `M`).
    ///
    /// # Panics
    /// Panics if `bound == 0`: with `M = 0` no process could ever take a
    /// ticket, so the constant must be at least 1 (the paper implicitly
    /// assumes `M ≥ 1` since tickets start at 1).
    #[must_use]
    pub fn with_bound(n: usize, bound: u64) -> Self {
        Self::with_bound_and_mode(n, bound, ScanMode::Packed)
    }

    /// Creates a Bakery++ lock with an explicit [`ScanMode`]
    /// ([`ScanMode::Padded`] reproduces the seed's per-register SeqCst scan
    /// for baseline measurements and ablations).
    ///
    /// # Panics
    /// Panics if `bound == 0` (see [`BakeryPlusPlusLock::with_bound`]).
    #[must_use]
    pub fn with_bound_and_mode(n: usize, bound: u64, mode: ScanMode) -> Self {
        Self::with_bound_mode_and_strategy(n, bound, mode, crate::wait::default_strategy())
    }

    /// Creates a Bakery++ lock with an explicit [`WaitStrategy`] for its
    /// `L1`/`L2`/`L3` wait loops (on top of every
    /// [`BakeryPlusPlusLock::with_bound_and_mode`] knob).
    ///
    /// # Panics
    /// Panics if `bound == 0` (see [`BakeryPlusPlusLock::with_bound`]).
    #[must_use]
    pub fn with_bound_mode_and_strategy(
        n: usize,
        bound: u64,
        mode: ScanMode,
        strategy: Arc<dyn WaitStrategy>,
    ) -> Self {
        assert!(bound >= 1, "the register bound M must be at least 1");
        Self {
            // The Panic policy documents the Theorem: if Bakery++ ever asked
            // the register file to store a value above M, that would be a bug
            // in this crate and we want the loudest possible failure.
            file: RegisterFile::with_mode(n, bound, OverflowPolicy::Panic, mode),
            slots: SlotAllocator::new(n),
            stats: LockStats::new(),
            bound,
            waits: WaitHandle::new(strategy),
        }
    }

    /// The scan mode this lock was built with.
    #[must_use]
    pub fn scan_mode(&self) -> ScanMode {
        self.file.mode()
    }

    /// The wait plane this lock's blocking paths run through.
    #[must_use]
    pub fn wait_plane(&self) -> &WaitHandle {
        &self.waits
    }

    /// The register bound `M`.
    #[must_use]
    pub fn bound(&self) -> u64 {
        self.bound
    }

    /// The shared register file (read-only view used by tests and experiments).
    #[must_use]
    pub fn registers(&self) -> &RegisterFile {
        &self.file
    }

    /// The ticket this process currently holds (0 when idle or resetting).
    #[must_use]
    pub fn current_ticket(&self, pid: usize) -> Ticket {
        Ticket::new(self.file.read_number(pid), pid)
    }

    /// Emulates a crash/restart of process `pid` outside its critical section
    /// (paper assumptions 1.5–1.7): both of its registers are reset to zero.
    pub fn crash_reset(&self, pid: usize) {
        self.file.reset_process(pid);
        // Both registers flipped to zero: wake L2/L3 waiters on the affected
        // words, L1 waiters (the crashed register may have been the one
        // holding the situation illegitimate) and async lock futures.
        self.waits.notify(choosing_site(&self.waits, &self.file, pid));
        self.waits.notify(ticket_site(&self.waits, &self.file, pid));
        self.waits.notify(self.waits.guard());
        self.waits.notify(self.waits.release());
    }

    /// True when some register currently holds a value `≥ M` — the paper's
    /// *illegitimate situation* that the `L1` guard waits out.
    ///
    /// Since every register individually holds a value `≤ M`, "∃q:
    /// number[q] ≥ M" is equivalent to "maximum ≥ M", which packed mode
    /// answers from the snapshot plane in `O(N/8)` word reads.
    #[must_use]
    pub fn situation_is_illegitimate(&self) -> bool {
        match self.file.packed() {
            Some(packed) => packed.max_number() >= self.bound,
            None => (0..self.file.len()).any(|q| self.file.read_number(q) >= self.bound),
        }
    }

    /// One non-blocking pass through Algorithm 2's doorway.
    ///
    /// Outcomes:
    /// * [`DoorwayOutcome::Blocked`] — the `L1` guard saw a register `≥ M`;
    /// * [`DoorwayOutcome::Reset`] — the observed maximum was `≥ M`, so the
    ///   process reset its registers (`number[i] := 0; choosing[i] := 0`);
    /// * [`DoorwayOutcome::Ticket`] — a ticket `maximum + 1 ≤ M` was stored.
    ///
    /// The blocking [`RawMutexAlgorithm::acquire`] simply retries this until a
    /// ticket is obtained; the harness records the intermediate outcomes for
    /// experiments **E1** and **E6**.
    pub fn try_doorway(&self, pid: usize) -> DoorwayOutcome {
        assert!(pid < self.capacity(), "pid {pid} out of range");
        // L1: if ∃ q : number[q] >= M then retry later.
        if self.situation_is_illegitimate() {
            return DoorwayOutcome::Blocked;
        }
        self.file.write_choosing(pid, true);
        let max = match self.file.packed() {
            Some(packed) => {
                // Handshake fence #1 (see `bakery::try_doorway`): the
                // `choosing[i] := 1` store must be visible before the scan's
                // loads, so two concurrent choosers cannot both miss each
                // other.
                fence(Ordering::SeqCst); // mem: doorway-dekker.choosing
                packed.max_number()
            }
            // Padded baseline: the seed's per-register SeqCst scan.
            None => TicketOrder::maximum(&self.file.snapshot_numbers()),
        };
        // Store the maximum first, exactly as Algorithm 2 does.  Every
        // register individually holds a value <= M, so max <= M and this store
        // can never overflow.
        debug_assert!(max <= self.bound);
        self.file.write_number(pid, max, &self.stats);

        if max >= self.bound {
            // Reset branch: number[i] := 0; choosing[i] := 0; goto L1.
            self.file.write_number(pid, 0, &self.stats);
            self.file.write_choosing(pid, false);
            self.stats.record_reset();
            // The transient `number[i] := max` parked at M was itself an
            // illegitimate-situation source; zeroing it may unblock both L1
            // waiters and L3 waiters ordered behind the transient value.
            self.waits.notify(ticket_site(&self.waits, &self.file, pid));
            self.waits.notify(choosing_site(&self.waits, &self.file, pid));
            self.waits.notify(self.waits.guard());
            return DoorwayOutcome::Reset;
        }

        // Safe to increment: max < M implies max + 1 <= M.
        self.file.write_number(pid, max + 1, &self.stats);
        self.stats.record_ticket(max + 1);
        if self.file.packed().is_some() {
            // Handshake fence #2: the ticket store must be visible before the
            // L2/L3 loads (including the fast-path emptiness check).
            fence(Ordering::SeqCst); // mem: doorway-dekker.ticket
        }
        self.file.write_choosing(pid, false);
        // Unlike the classic doorway, the `max → max + 1` increment *can*
        // flip a tie-breaking L3 wait to "pass" (a waiter with the same
        // ticket and a higher pid stops losing the lexicographic comparison
        // to the transient `max`), so the ticket site is notified too.
        self.waits.notify(ticket_site(&self.waits, &self.file, pid));
        self.waits.notify(choosing_site(&self.waits, &self.file, pid));
        DoorwayOutcome::Ticket(max + 1)
    }

    /// The scan loops `L2`/`L3`, identical to the original Bakery — including
    /// the packed-mode empty-bakery fast path (see
    /// [`crate::bakery::BakeryLock::await_turn`]).
    pub fn await_turn(&self, pid: usize) {
        match self.file.packed() {
            Some(packed) => await_turn_packed(&self.file, packed, pid, &self.stats, &self.waits),
            None => await_turn_padded(&self.file, pid, &self.stats, &self.waits),
        }
    }

    /// Non-blocking check of the scan condition: would process `pid` be
    /// allowed into the critical section right now?
    #[must_use]
    pub fn may_enter(&self, pid: usize) -> bool {
        let me = Ticket::new(self.file.read_number(pid), pid);
        if me.is_idle() {
            return false;
        }
        (0..self.file.len()).all(|j| {
            if j == pid {
                return true;
            }
            if self.file.read_choosing(j) {
                return false;
            }
            let other = Ticket::new(self.file.read_number(j), j);
            !TicketOrder::must_wait_for(me, other)
        })
    }
}

impl RawMutexAlgorithm for BakeryPlusPlusLock {
    fn capacity(&self) -> usize {
        self.file.len()
    }

    fn acquire(&self, pid: usize) {
        // One wait episode across the whole doorway retry loop: Blocked and
        // Reset both re-watch the same admission predicate, so escalation
        // carries across retries (the episode-policy exception the wait
        // contract documents).
        let mut token = WaitToken::new();
        let guard = self.waits.guard();
        let mut l1_rounds = 0u64;
        loop {
            match self.try_doorway(pid) {
                DoorwayOutcome::Ticket(_) => break,
                DoorwayOutcome::Blocked => {
                    l1_rounds += 1;
                    self.waits
                        .wait(guard, &mut token, &mut || self.situation_is_illegitimate());
                }
                DoorwayOutcome::Reset => {
                    self.waits
                        .wait(guard, &mut token, &mut || self.situation_is_illegitimate());
                }
                DoorwayOutcome::Overflowed { .. } => {
                    unreachable!("Bakery++ never overflows (paper §6.1)")
                }
            }
        }
        self.stats.record_l1_waits(l1_rounds);
        self.await_turn(pid);
    }

    fn release(&self, pid: usize) {
        self.file.write_number(pid, 0, &self.stats);
        // The zero store may flip L3 waits behind this ticket, re-legitimise
        // the situation for L1 waiters, and release async lock futures.
        self.waits.notify(ticket_site(&self.waits, &self.file, pid));
        self.waits.notify(self.waits.guard());
        self.waits.notify(self.waits.release());
    }

    fn try_acquire(&self, pid: usize) -> bool {
        // One doorway pass (Blocked/Reset already leave the registers clean),
        // then one non-blocking evaluation of the L2/L3 condition.  Backing
        // out of a held ticket resets the pid's own registers — the paper's
        // doorway-crash rule (assumptions 1.5–1.7), so safety is unaffected.
        if !self.try_doorway(pid).took_ticket() {
            return false;
        }
        if self.may_enter(pid) {
            true
        } else {
            self.file.write_number(pid, 0, &self.stats);
            self.waits.notify(ticket_site(&self.waits, &self.file, pid));
            self.waits.notify(self.waits.guard());
            false
        }
    }

    fn crash_abort(&self, pid: usize) -> bool {
        // The paper's crash rule is exactly `crash_reset`: zero the pid's
        // `choosing`/`number` registers (and their packed-mirror lanes) so
        // the restarted process re-enters from the noncritical section.
        // This is the same backout `try_acquire` performs on its failure
        // path, applicable from *any* pre-CS point.
        self.crash_reset(pid);
        self.stats.record_crash_abort();
        true
    }

    fn algorithm_name(&self) -> &'static str {
        "bakery++"
    }

    fn shared_word_count(&self) -> usize {
        // Identical shared footprint to the original Bakery: choosing[1..N]
        // and number[1..N].  The constant M is not a shared variable.
        2 * self.file.len()
    }

    fn register_bound(&self) -> Option<u64> {
        Some(self.bound)
    }

    fn slot_allocator(&self) -> &Arc<SlotAllocator> {
        &self.slots
    }

    fn stats(&self) -> &LockStats {
        &self.stats
    }

    fn wait_handle(&self) -> Option<&WaitHandle> {
        Some(&self.waits)
    }

    fn as_raw(&self) -> &dyn RawMutexAlgorithm {
        self
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn single_process_can_enter_repeatedly() {
        let lock = BakeryPlusPlusLock::with_bound(1, 10);
        let slot = lock.register().unwrap();
        for _ in 0..25 {
            let _g = lock.lock(&slot);
        }
        assert_eq!(lock.stats().cs_entries(), 25);
        assert_eq!(lock.stats().overflow_attempts(), 0);
    }

    #[test]
    #[should_panic(expected = "M must be at least 1")]
    fn zero_bound_is_rejected() {
        let _ = BakeryPlusPlusLock::with_bound(2, 0);
    }

    #[test]
    fn default_bound_is_sixteen_bit() {
        let lock = BakeryPlusPlusLock::new(2);
        assert_eq!(lock.bound(), u64::from(u16::MAX));
        assert_eq!(lock.register_bound(), Some(u64::from(u16::MAX)));
    }

    /// The §3 alternation scenario that overflows the classic Bakery: with
    /// Bakery++ the ticket is capped by M, the doorway reports `Reset` or
    /// `Blocked` instead of overflowing, and after the bakery drains the
    /// processes continue normally.
    #[test]
    fn alternation_never_exceeds_bound() {
        let bound = 5;
        let lock = BakeryPlusPlusLock::with_bound(2, bound);
        assert_eq!(lock.try_doorway(0), DoorwayOutcome::Ticket(1));
        let mut capped = false;
        let mut completed = 0u64;
        let mut pending = 0usize; // process currently holding a ticket
        for round in 0..200 {
            let entering = 1 - pending;
            match lock.try_doorway(entering) {
                DoorwayOutcome::Ticket(number) => {
                    assert!(number <= bound);
                    // The process that was already in the bakery gets served.
                    lock.await_turn(pending);
                    lock.release(pending);
                    completed += 1;
                    pending = entering;
                }
                DoorwayOutcome::Reset | DoorwayOutcome::Blocked => {
                    capped = true;
                    // The entering process backs off; the pending process is
                    // served, which drains the bakery and re-legitimises the
                    // situation.
                    lock.await_turn(pending);
                    lock.release(pending);
                    completed += 1;
                    // Now the formerly blocked process can take ticket 1.
                    let retry = lock.try_doorway(entering);
                    assert!(retry.took_ticket(), "empty bakery must admit, got {retry:?} at round {round}");
                    pending = entering;
                }
                DoorwayOutcome::Overflowed { .. } => panic!("Bakery++ must never overflow"),
            }
        }
        assert!(capped, "with M = {bound} the cap must be hit");
        assert!(completed >= 190);
        assert_eq!(lock.stats().overflow_attempts(), 0);
        assert!(lock.stats().max_ticket() <= bound);
    }

    #[test]
    fn blocked_when_some_register_is_at_bound() {
        let lock = BakeryPlusPlusLock::with_bound(2, 4);
        lock.file.write_number(1, 4, &lock.stats);
        assert!(lock.situation_is_illegitimate());
        assert_eq!(lock.try_doorway(0), DoorwayOutcome::Blocked);
        lock.crash_reset(1);
        assert!(!lock.situation_is_illegitimate());
        assert_eq!(lock.try_doorway(0), DoorwayOutcome::Ticket(1));
        lock.release(0);
    }

    #[test]
    fn reset_branch_when_maximum_reaches_bound_after_admission() {
        // The L1 guard uses >= M, but a register can reach M-1 legitimately;
        // then maximum + 1 would be exactly M which is still storable, so the
        // reset branch only triggers when maximum itself is >= M.  Construct
        // that window explicitly: admit process 0 (all registers < M), then
        // raise process 1's register to M before process 0 reads the maximum.
        // With the single-pass API we emulate the interleaving by hand.
        let lock = BakeryPlusPlusLock::with_bound(2, 4);
        lock.file.write_number(1, 3, &lock.stats);
        // Process 0 passes L1 (3 < 4) and draws max 3 -> ticket 4 == M: legal.
        assert_eq!(lock.try_doorway(0), DoorwayOutcome::Ticket(4));
        lock.release(0);
        // Now process 1's register is still 3 and process 0 re-tries while a
        // register equal to M exists -> Blocked path already covered; the
        // Reset branch itself requires observing max >= M after admission,
        // which a sequential caller cannot produce (the L1 guard and the
        // maximum read see the same values).  That interleaving is exercised
        // by the model checker (experiment E2); here we simply document that
        // the sequential API keeps the invariant.
        assert!(lock.stats().max_ticket() <= 4);
        assert_eq!(lock.stats().overflow_attempts(), 0);
        lock.crash_reset(1);
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        let lock = Arc::new(BakeryPlusPlusLock::with_bound(4, 1000));
        let counter = Arc::new(AtomicU64::new(0));
        let in_cs = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                let in_cs = Arc::clone(&in_cs);
                scope.spawn(move || {
                    let slot = lock.register().unwrap();
                    for _ in 0..500 {
                        let _g = lock.lock(&slot);
                        let inside = in_cs.fetch_add(1, Ordering::SeqCst);
                        assert_eq!(inside, 0, "two processes inside the critical section");
                        counter.fetch_add(1, Ordering::SeqCst);
                        in_cs.fetch_sub(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 2000);
        assert_eq!(lock.stats().cs_entries(), 2000);
        assert_eq!(lock.stats().overflow_attempts(), 0);
    }

    #[test]
    fn mutual_exclusion_with_tiny_bound_forces_resets() {
        // With M = 3 and four contending threads the reset/L1 machinery is
        // exercised constantly; mutual exclusion and overflow freedom must
        // still hold (the §7 "price of guaranteeing no overflows" case).
        let lock = Arc::new(BakeryPlusPlusLock::with_bound(4, 3));
        let in_cs = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let lock = Arc::clone(&lock);
                let in_cs = Arc::clone(&in_cs);
                scope.spawn(move || {
                    let slot = lock.register().unwrap();
                    for _ in 0..200 {
                        let _g = lock.lock(&slot);
                        assert_eq!(in_cs.fetch_add(1, Ordering::SeqCst), 0);
                        in_cs.fetch_sub(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(lock.stats().cs_entries(), 800);
        assert_eq!(lock.stats().overflow_attempts(), 0);
        assert!(lock.stats().max_ticket() <= 3);
    }

    #[test]
    fn uncontended_acquires_take_the_fast_path() {
        let lock = BakeryPlusPlusLock::with_bound(4, 65_535);
        assert_eq!(lock.scan_mode(), crate::snapshot::ScanMode::Packed);
        let slot = lock.register().unwrap();
        for _ in 0..50 {
            let _g = lock.lock(&slot);
        }
        assert_eq!(lock.stats().fast_path_hits(), 50);
        assert_eq!(lock.stats().doorway_waits(), 0);
        assert_eq!(lock.stats().overflow_attempts(), 0);
    }

    #[test]
    fn mutual_exclusion_with_u8_lanes_under_contention() {
        // M = 255 with 40 slots selects u8 ticket lanes: the four active
        // contenders (slots 0..3) share one packed word, the tightest
        // false-sharing configuration of the mirror.
        let lock = Arc::new(BakeryPlusPlusLock::with_bound(40, 255));
        assert_eq!(
            lock.registers().packed().unwrap().width(),
            crate::snapshot::LaneWidth::U8
        );
        let in_cs = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let lock = Arc::clone(&lock);
                let in_cs = Arc::clone(&in_cs);
                scope.spawn(move || {
                    let slot = lock.register().unwrap();
                    for _ in 0..400 {
                        let _g = lock.lock(&slot);
                        assert_eq!(in_cs.fetch_add(1, Ordering::SeqCst), 0);
                        in_cs.fetch_sub(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(lock.stats().cs_entries(), 1600);
        assert_eq!(lock.stats().overflow_attempts(), 0);
        assert!(lock.stats().max_ticket() <= 255);
    }

    #[test]
    fn padded_mode_mutual_exclusion_under_contention() {
        let lock = Arc::new(BakeryPlusPlusLock::with_bound_and_mode(
            4,
            1000,
            crate::snapshot::ScanMode::Padded,
        ));
        assert!(lock.registers().packed().is_none());
        let in_cs = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let lock = Arc::clone(&lock);
                let in_cs = Arc::clone(&in_cs);
                scope.spawn(move || {
                    let slot = lock.register().unwrap();
                    for _ in 0..300 {
                        let _g = lock.lock(&slot);
                        assert_eq!(in_cs.fetch_add(1, Ordering::SeqCst), 0);
                        in_cs.fetch_sub(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(lock.stats().cs_entries(), 1200);
        assert_eq!(lock.stats().fast_path_hits(), 0);
    }

    #[test]
    fn shared_footprint_matches_original_bakery() {
        use crate::bakery::BakeryLock;
        let pp = BakeryPlusPlusLock::with_bound(6, 100);
        let classic = BakeryLock::new(6);
        assert_eq!(pp.shared_word_count(), classic.shared_word_count());
    }

    #[test]
    fn may_enter_reflects_ticket_priority() {
        let lock = BakeryPlusPlusLock::with_bound(2, 100);
        assert!(!lock.may_enter(0));
        assert!(lock.try_doorway(0).took_ticket());
        assert!(lock.try_doorway(1).took_ticket());
        assert!(lock.may_enter(0));
        assert!(!lock.may_enter(1));
        lock.release(0);
        assert!(lock.may_enter(1));
        lock.release(1);
    }

    #[test]
    fn crash_reset_unblocks_l1_guard() {
        let lock = BakeryPlusPlusLock::with_bound(2, 4);
        let a = lock.register_exact(0).unwrap();
        // Process 1 "crashes" with a register stuck at M; after reset the L1
        // guard must admit process 0.
        lock.file.write_number(1, 4, &lock.stats);
        lock.crash_reset(1);
        let _g = lock.lock(&a);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn doorway_rejects_out_of_range_pid() {
        let lock = BakeryPlusPlusLock::with_bound(2, 4);
        let _ = lock.try_doorway(7);
    }
}
