//! Facade over the atomic primitives used by the locks.
//!
//! In normal builds this re-exports `std::sync::atomic`.  When the crate is
//! compiled with `RUSTFLAGS="--cfg loom"` the [loom](https://docs.rs/loom)
//! model checker's instrumented atomics are used instead, so the real lock
//! implementations can be exhaustively checked for small thread counts under
//! the C11 memory model (see `crates/core/tests` and DESIGN.md §2).

#[cfg(loom)]
pub use loom::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};

#[cfg(not(loom))]
pub use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Yield to other threads / the loom scheduler.
///
/// Under loom every busy-wait iteration must yield so the model checker can
/// switch threads; under a real OS we use a spin hint first and leave the
/// heavier `thread::yield_now` decision to [`crate::backoff::Backoff`].
#[inline]
pub fn spin_hint() {
    #[cfg(loom)]
    loom::thread::yield_now();
    #[cfg(not(loom))]
    std::hint::spin_loop();
}

/// Yield the current thread to the OS scheduler (or loom's scheduler).
#[inline]
pub fn yield_now() {
    #[cfg(loom)]
    loom::thread::yield_now();
    #[cfg(not(loom))]
    std::thread::yield_now();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_facade_is_usable() {
        let v = AtomicU64::new(7);
        assert_eq!(v.load(Ordering::SeqCst), 7);
        v.store(9, Ordering::SeqCst);
        assert_eq!(v.load(Ordering::SeqCst), 9);
        assert_eq!(v.fetch_add(1, Ordering::SeqCst), 9);
        assert_eq!(v.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn hints_do_not_panic() {
        spin_hint();
        yield_now();
        fence(Ordering::SeqCst);
    }
}
