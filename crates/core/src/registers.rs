//! Bounded single-writer multi-reader registers.
//!
//! The paper's Section 3 defines an *overflow* as the attempt to store a value
//! `v > M` in a register of a machine whose registers can hold at most `M`.
//! [`BoundedRegister`] makes that machine limit explicit: every store goes
//! through a bound check, and what happens on overflow is decided by an
//! [`OverflowPolicy`].  The classic Bakery lock uses the policy to *emulate*
//! what a real machine would do (wrap or saturate), which is exactly how the
//! Section 3 failure scenario is reproduced; Bakery++ never triggers the
//! policy at all, which experiment **E1/E2** verify.
//!
//! [`RegisterFile`] groups the `choosing[1..N]` and `number[1..N]` arrays and
//! enforces the paper's single-writer discipline: writes require the process
//! id and only touch that process's own cells.  The type is deliberately the
//! only way the lock implementations can reach the shared memory, so "no
//! process writes into another process's memory" holds by construction.

use std::fmt;

use crossbeam::utils::CachePadded;

use crate::snapshot::{PackedSnapshot, ScanMode};
use crate::stats::LockStats;
use crate::sync::{AtomicU64, Ordering};

/// What a bounded register does when asked to store a value above its bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OverflowPolicy {
    /// Store `value mod (M + 1)` — what fixed-width machine arithmetic does.
    ///
    /// This is the behaviour that breaks the classic Bakery algorithm: a
    /// wrapped ticket is *smaller* than the tickets of processes already
    /// waiting, so the wrapping process overtakes them and mutual exclusion
    /// is violated (experiment **E1**).
    #[default]
    Wrap,
    /// Clamp the stored value to `M`.
    Saturate,
    /// Panic immediately.  Useful in tests that assert overflow freedom.
    Panic,
    /// Store `value mod (M + 1)` but keep counting the events; identical to
    /// [`OverflowPolicy::Wrap`] at the register level, separated so reports
    /// can distinguish "we knew and accepted" from "silent wrap".
    Report,
}

impl OverflowPolicy {
    /// Applies the policy to an out-of-range value, returning what is stored.
    ///
    /// Panics if the policy is [`OverflowPolicy::Panic`].
    #[must_use]
    pub fn resolve(self, value: u64, bound: u64) -> u64 {
        debug_assert!(value > bound);
        match self {
            OverflowPolicy::Wrap | OverflowPolicy::Report => {
                if bound == u64::MAX {
                    value
                } else {
                    value % (bound + 1)
                }
            }
            OverflowPolicy::Saturate => bound,
            OverflowPolicy::Panic => panic!(
                "register overflow: attempted to store {value} in a register bounded by {bound}"
            ),
        }
    }
}

impl fmt::Display for OverflowPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            OverflowPolicy::Wrap => "wrap",
            OverflowPolicy::Saturate => "saturate",
            OverflowPolicy::Panic => "panic",
            OverflowPolicy::Report => "report",
        };
        f.write_str(name)
    }
}

/// A record of one overflow attempt on a bounded register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverflowEvent {
    /// Index of the register within its register file (the owning pid).
    pub register: usize,
    /// The value the algorithm attempted to store.
    pub attempted: u64,
    /// The register bound `M`.
    pub bound: u64,
    /// The value actually stored after applying the policy.
    pub stored: u64,
}

impl fmt::Display for OverflowEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "overflow on register {}: attempted {} > M={} (stored {})",
            self.register, self.attempted, self.bound, self.stored
        )
    }
}

/// A single bounded register backed by an atomic word.
///
/// The register itself is multi-reader; write discipline (single writer) is
/// enforced one level up by [`RegisterFile`].
#[derive(Debug)]
pub struct BoundedRegister {
    cell: CachePadded<AtomicU64>,
    bound: u64,
    policy: OverflowPolicy,
}

impl BoundedRegister {
    /// Creates a register holding 0 with the given bound and policy.
    #[must_use]
    pub fn new(bound: u64, policy: OverflowPolicy) -> Self {
        Self {
            cell: CachePadded::new(AtomicU64::new(0)),
            bound,
            policy,
        }
    }

    /// The bound `M` of this register.
    #[must_use]
    pub fn bound(&self) -> u64 {
        self.bound
    }

    /// The configured overflow policy.
    #[must_use]
    pub fn policy(&self) -> OverflowPolicy {
        self.policy
    }

    /// Reads the register (SeqCst — the seed's blanket ordering, kept for the
    /// padded scan mode and for the experiment-facing accessors).
    #[must_use]
    pub fn read(&self) -> u64 {
        self.cell.load(Ordering::SeqCst) // mem: padded-register
    }

    /// Reads the register with acquire ordering (packed scan mode; the
    /// store–load orderings the proof needs are provided by explicit fences
    /// in the lock implementations).
    #[must_use]
    pub fn read_acquire(&self) -> u64 {
        self.cell.load(Ordering::Acquire)
    }

    /// Stores a value known to be within bounds (SeqCst).
    ///
    /// Returns an [`OverflowEvent`] if the value was actually out of range and
    /// the policy had to be applied — callers that believe they never overflow
    /// (Bakery++) treat `Some` as a bug.
    pub fn write(&self, index: usize, value: u64) -> Option<OverflowEvent> {
        self.write_with(index, value, Ordering::SeqCst) // mem: padded-register
    }

    /// Stores with release ordering (packed scan mode).
    pub fn write_release(&self, index: usize, value: u64) -> Option<OverflowEvent> {
        self.write_with(index, value, Ordering::Release)
    }

    fn write_with(&self, index: usize, value: u64, order: Ordering) -> Option<OverflowEvent> {
        if value <= self.bound {
            self.cell.store(value, order);
            None
        } else {
            let stored = self.policy.resolve(value, self.bound);
            self.cell.store(stored, order);
            Some(OverflowEvent {
                register: index,
                attempted: value,
                bound: self.bound,
                stored,
            })
        }
    }

    /// Resets the register to 0 (crash/restart semantics, assumption 1.5).
    pub fn reset(&self) {
        self.cell.store(0, Ordering::SeqCst); // mem: padded-register
    }
}

/// The shared memory of one lock instance: `choosing[0..n]` and `number[0..n]`.
///
/// All cells start at 0 as the paper requires.  Writes take the writing
/// process's id and are only applied to that process's own cells; reads may
/// target any cell.
#[derive(Debug)]
pub struct RegisterFile {
    choosing: Box<[BoundedRegister]>,
    number: Box<[BoundedRegister]>,
    /// The packed mirror (`None` in [`ScanMode::Padded`], where the seed's
    /// exact store sequence is preserved for baseline measurements).
    packed: Option<PackedSnapshot>,
    bound: u64,
    policy: OverflowPolicy,
}

impl RegisterFile {
    /// Creates a register file for `n` processes with ticket bound `M` and the
    /// given overflow policy for the `number` registers, in the default
    /// [`ScanMode::Packed`].
    ///
    /// The `choosing` registers are boolean-valued, so their bound is 1 and
    /// they can never overflow regardless of policy.
    #[must_use]
    pub fn new(n: usize, bound: u64, policy: OverflowPolicy) -> Self {
        Self::with_mode(n, bound, policy, ScanMode::Packed)
    }

    /// Creates a register file with an explicit [`ScanMode`].
    #[must_use]
    pub fn with_mode(n: usize, bound: u64, policy: OverflowPolicy, mode: ScanMode) -> Self {
        assert!(n > 0, "a lock needs at least one process slot");
        let choosing = (0..n)
            .map(|_| BoundedRegister::new(1, OverflowPolicy::Panic))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let number = (0..n)
            .map(|_| BoundedRegister::new(bound, policy))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let packed = match mode {
            ScanMode::Padded => None,
            ScanMode::Packed => Some(PackedSnapshot::new(n, bound)),
        };
        Self {
            choosing,
            number,
            packed,
            bound,
            policy,
        }
    }

    /// The scan mode this file was built for.
    #[must_use]
    pub fn mode(&self) -> ScanMode {
        if self.packed.is_some() {
            ScanMode::Packed
        } else {
            ScanMode::Padded
        }
    }

    /// The packed snapshot plane, when the file runs in packed mode.
    #[must_use]
    pub fn packed(&self) -> Option<&PackedSnapshot> {
        self.packed.as_ref()
    }

    /// Number of process slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.number.len()
    }

    /// True when the file has no slots (never the case for a constructed file).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.number.is_empty()
    }

    /// The ticket bound `M`.
    #[must_use]
    pub fn bound(&self) -> u64 {
        self.bound
    }

    /// The overflow policy applied to the `number` registers.
    #[must_use]
    pub fn policy(&self) -> OverflowPolicy {
        self.policy
    }

    /// Reads `choosing[j]`.
    #[must_use]
    pub fn read_choosing(&self, j: usize) -> bool {
        self.choosing[j].read() != 0
    }

    /// Reads `number[j]`.
    #[must_use]
    pub fn read_number(&self, j: usize) -> u64 {
        self.number[j].read()
    }

    /// Snapshot of all `number` registers (one non-atomic read per register,
    /// exactly like the algorithm's `maximum(number[1], …, number[N])` scan).
    #[must_use]
    pub fn snapshot_numbers(&self) -> Vec<u64> {
        self.number.iter().map(BoundedRegister::read).collect()
    }

    /// Reads `choosing[j]` with acquire ordering (packed-mode wait loops).
    #[must_use]
    pub fn read_choosing_acquire(&self, j: usize) -> bool {
        self.choosing[j].read_acquire() != 0
    }

    /// Reads `number[j]` with acquire ordering (packed-mode wait loops).
    #[must_use]
    pub fn read_number_acquire(&self, j: usize) -> u64 {
        self.number[j].read_acquire()
    }

    /// Writes `choosing[pid]`; only the owning process may call this.
    ///
    /// In packed mode the authoritative cell takes a release store and the
    /// mirror bit a release RMW (authoritative first, so a reader that
    /// observes the mirror bit also finds the cell up to date); in padded
    /// mode the seed's SeqCst store is preserved unchanged.
    pub fn write_choosing(&self, pid: usize, value: bool) {
        // `choosing` is 0/1-valued; the bound-1 register cannot overflow.
        match &self.packed {
            Some(packed) => {
                let _ = self.choosing[pid].write_release(pid, u64::from(value));
                packed.set_choosing(pid, value);
            }
            None => {
                let _ = self.choosing[pid].write(pid, u64::from(value));
            }
        }
    }

    /// Writes `number[pid]`, recording any overflow in `stats` and returning
    /// the event if one occurred.  The packed mirror (when present) receives
    /// the post-policy *stored* value, so a lane is never asked to hold more
    /// than the bound.
    pub fn write_number(
        &self,
        pid: usize,
        value: u64,
        stats: &LockStats,
    ) -> Option<OverflowEvent> {
        let event = match &self.packed {
            Some(packed) => {
                let event = self.number[pid].write_release(pid, value);
                packed.set_number(pid, event.map_or(value, |ev| ev.stored));
                event
            }
            None => self.number[pid].write(pid, value),
        };
        if let Some(ev) = event {
            stats.record_overflow(ev.attempted);
        }
        event
    }

    /// Resets both of `pid`'s registers to 0 (crash/restart, assumption 1.5).
    pub fn reset_process(&self, pid: usize) {
        self.number[pid].reset();
        self.choosing[pid].reset();
        if let Some(packed) = &self.packed {
            packed.set_number(pid, 0);
            packed.set_choosing(pid, false);
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn policy_wrap_matches_machine_arithmetic() {
        assert_eq!(OverflowPolicy::Wrap.resolve(256, 255), 0);
        assert_eq!(OverflowPolicy::Wrap.resolve(257, 255), 1);
        assert_eq!(OverflowPolicy::Report.resolve(300, 255), 44);
    }

    #[test]
    fn policy_saturate_clamps() {
        assert_eq!(OverflowPolicy::Saturate.resolve(1000, 255), 255);
    }

    #[test]
    #[should_panic(expected = "register overflow")]
    fn policy_panic_panics() {
        let _ = OverflowPolicy::Panic.resolve(256, 255);
    }

    #[test]
    fn policy_display_names() {
        assert_eq!(OverflowPolicy::Wrap.to_string(), "wrap");
        assert_eq!(OverflowPolicy::Saturate.to_string(), "saturate");
        assert_eq!(OverflowPolicy::Panic.to_string(), "panic");
        assert_eq!(OverflowPolicy::Report.to_string(), "report");
    }

    #[test]
    fn register_starts_at_zero() {
        let r = BoundedRegister::new(255, OverflowPolicy::Wrap);
        assert_eq!(r.read(), 0);
        assert_eq!(r.bound(), 255);
        assert_eq!(r.policy(), OverflowPolicy::Wrap);
    }

    #[test]
    fn in_range_write_returns_no_event() {
        let r = BoundedRegister::new(255, OverflowPolicy::Wrap);
        assert!(r.write(0, 255).is_none());
        assert_eq!(r.read(), 255);
    }

    #[test]
    fn out_of_range_write_reports_event() {
        let r = BoundedRegister::new(255, OverflowPolicy::Wrap);
        let ev = r.write(3, 256).expect("overflow event");
        assert_eq!(ev.register, 3);
        assert_eq!(ev.attempted, 256);
        assert_eq!(ev.bound, 255);
        assert_eq!(ev.stored, 0);
        assert_eq!(r.read(), 0);
        assert!(ev.to_string().contains("overflow on register 3"));
    }

    #[test]
    fn reset_returns_to_zero() {
        let r = BoundedRegister::new(10, OverflowPolicy::Saturate);
        r.write(0, 7);
        r.reset();
        assert_eq!(r.read(), 0);
    }

    #[test]
    fn register_file_initial_state_is_all_zero() {
        let file = RegisterFile::new(4, 255, OverflowPolicy::Wrap);
        assert_eq!(file.len(), 4);
        assert!(!file.is_empty());
        for j in 0..4 {
            assert_eq!(file.read_number(j), 0);
            assert!(!file.read_choosing(j));
        }
        assert_eq!(file.snapshot_numbers(), vec![0, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn register_file_rejects_zero_processes() {
        let _ = RegisterFile::new(0, 255, OverflowPolicy::Wrap);
    }

    #[test]
    fn write_number_records_overflow_in_stats() {
        let file = RegisterFile::new(2, 3, OverflowPolicy::Wrap);
        let stats = LockStats::new();
        assert!(file.write_number(0, 3, &stats).is_none());
        assert_eq!(stats.overflow_attempts(), 0);
        let ev = file.write_number(0, 4, &stats).expect("overflow");
        assert_eq!(ev.stored, 0);
        assert_eq!(stats.overflow_attempts(), 1);
    }

    #[test]
    fn padded_mode_has_no_mirror() {
        let file = RegisterFile::with_mode(3, 255, OverflowPolicy::Wrap, ScanMode::Padded);
        assert!(file.packed().is_none());
        assert_eq!(file.mode(), ScanMode::Padded);
        let stats = LockStats::new();
        file.write_number(1, 9, &stats);
        file.write_choosing(1, true);
        assert_eq!(file.read_number(1), 9);
        assert!(file.read_choosing(1));
    }

    #[test]
    fn default_mode_is_packed_and_mirror_tracks_writes() {
        let file = RegisterFile::new(3, 255, OverflowPolicy::Wrap);
        assert_eq!(file.mode(), ScanMode::Packed);
        let stats = LockStats::new();
        file.write_number(2, 77, &stats);
        file.write_choosing(0, true);
        let packed = file.packed().expect("packed mode");
        assert_eq!(packed.decode_numbers(), vec![0, 0, 77]);
        assert_eq!(packed.decode_choosing(), vec![true, false, false]);
        file.reset_process(2);
        assert_eq!(packed.number(2), 0);
    }

    #[test]
    fn mirror_receives_post_policy_value_on_overflow() {
        let file = RegisterFile::new(2, 3, OverflowPolicy::Wrap);
        let stats = LockStats::new();
        let ev = file.write_number(0, 5, &stats).expect("overflow");
        assert_eq!(ev.stored, 1); // 5 mod 4
        assert_eq!(file.packed().unwrap().number(0), 1);
        assert_eq!(file.read_number(0), 1);
    }

    /// True interleaving: one writer thread per process slot hammering its own
    /// registers concurrently (the SWMR discipline), then a quiescent check
    /// that the mirror decodes to exactly the authoritative plane.
    #[test]
    fn mirror_matches_file_after_concurrent_single_writer_traffic() {
        use std::sync::Arc;
        // 40 slots picks u8/u16/u64 lanes for the three bounds; the twelve
        // writer threads below share packed words in the narrow-lane cases.
        for bound in [200u64, 60_000, u64::MAX] {
            let file = Arc::new(RegisterFile::new(40, bound, OverflowPolicy::Wrap));
            let stats = Arc::new(LockStats::new());
            std::thread::scope(|scope| {
                for pid in 0..12 {
                    let file = Arc::clone(&file);
                    let stats = Arc::clone(&stats);
                    scope.spawn(move || {
                        let mut value = pid as u64;
                        for round in 0..2_000u64 {
                            value = value.wrapping_mul(6364136223846793005).wrapping_add(round);
                            let _ = file.write_number(pid, value % (bound / 2 + 1), &stats);
                            file.write_choosing(pid, round % 3 == 0);
                            if round % 97 == 0 {
                                file.reset_process(pid);
                            }
                        }
                    });
                }
            });
            let packed = file.packed().expect("packed mode");
            assert_eq!(packed.decode_numbers(), file.snapshot_numbers(), "bound {bound}");
            let choosing: Vec<bool> = (0..40).map(|j| file.read_choosing(j)).collect();
            assert_eq!(packed.decode_choosing(), choosing, "bound {bound}");
        }
    }

    #[test]
    fn reset_process_clears_both_registers() {
        let file = RegisterFile::new(2, 255, OverflowPolicy::Wrap);
        let stats = LockStats::new();
        file.write_choosing(1, true);
        file.write_number(1, 9, &stats);
        file.reset_process(1);
        assert_eq!(file.read_number(1), 0);
        assert!(!file.read_choosing(1));
        // process 0 untouched
        file.write_number(0, 5, &stats);
        file.reset_process(1);
        assert_eq!(file.read_number(0), 5);
    }

    proptest! {
        /// Regardless of the (non-panicking) policy, the stored value never
        /// exceeds the bound: the register is genuinely bounded hardware.
        #[test]
        fn stored_value_never_exceeds_bound(
            bound in 1u64..1000,
            value in 0u64..100_000,
            policy_idx in 0usize..3,
        ) {
            let policy = [OverflowPolicy::Wrap, OverflowPolicy::Saturate, OverflowPolicy::Report][policy_idx];
            let r = BoundedRegister::new(bound, policy);
            let _ = r.write(0, value);
            prop_assert!(r.read() <= bound);
        }

        /// Wrap really is modulo arithmetic, i.e. what an (M+1)-state machine
        /// register would hold.
        #[test]
        fn wrap_is_modulo(bound in 1u64..1_000, value in 0u64..1_000_000) {
            let r = BoundedRegister::new(bound, OverflowPolicy::Wrap);
            let _ = r.write(0, value);
            prop_assert_eq!(r.read(), value % (bound + 1));
        }

        /// After an arbitrary interleaved sequence of register writes, the
        /// packed mirror decodes to exactly the `RegisterFile` contents —
        /// for every lane width (u8, u16 and u64 lanes; with 40 slots the
        /// adaptive rule picks exactly the width matching each bound).
        #[test]
        fn packed_mirror_decodes_to_register_file(
            ops in proptest::collection::vec((0usize..40, 0u64..200_000, 0usize..4), 1..160),
            width_idx in 0usize..3,
        ) {
            use crate::snapshot::LaneWidth;
            let (bound, expected_width) = [
                (200u64, LaneWidth::U8),
                (60_000, LaneWidth::U16),
                (u64::MAX, LaneWidth::U64),
            ][width_idx];
            let file = RegisterFile::new(40, bound, OverflowPolicy::Wrap);
            let stats = LockStats::new();
            for &(pid, value, kind) in &ops {
                match kind {
                    0 | 1 => { let _ = file.write_number(pid, value, &stats); }
                    2 => file.write_choosing(pid, value % 2 == 0),
                    _ => file.reset_process(pid),
                }
            }
            let packed = file.packed().expect("default mode is packed");
            prop_assert_eq!(packed.width(), expected_width);
            prop_assert_eq!(packed.decode_numbers(), file.snapshot_numbers());
            let choosing: Vec<bool> = (0..40).map(|j| file.read_choosing(j)).collect();
            prop_assert_eq!(packed.decode_choosing(), choosing);
        }

        /// Lane-boundary clamp: `LaneWidth::for_bound` admits the exact lane
        /// maxima (`u8::MAX`, `u16::MAX`), yet the classic doorway transiently
        /// publishes `max + 1` — one more than the widest value the lane can
        /// hold.  The overflow policy must resolve *before* the mirror update,
        /// so the packed lane only ever receives the post-policy value and
        /// neighbouring lanes in the same word survive intact.
        #[test]
        fn mirror_clamps_before_update_on_exact_boundary_bounds(
            bound_idx in 0usize..5,
            policy_idx in 0usize..3,
            pid in 0usize..40,
            overshoot in 1u64..4,
        ) {
            let bound = [254u64, 255, 256, 65_535, 65_536][bound_idx];
            let policy =
                [OverflowPolicy::Wrap, OverflowPolicy::Saturate, OverflowPolicy::Report][policy_idx];
            // 40 slots force narrow lanes at the u8/u16 boundaries, so the
            // doorway's transient `bound + overshoot` would corrupt the
            // neighbouring lanes of the shared word if it ever reached the
            // mirror un-clamped.
            let file = RegisterFile::new(40, bound, policy);
            let stats = LockStats::new();
            // Give the neighbours known in-range tickets first.
            for j in 0..40 {
                if j != pid {
                    prop_assert!(file.write_number(j, (j as u64) % bound + 1, &stats).is_none());
                }
            }
            let attempted = bound + overshoot;
            let event = file.write_number(pid, attempted, &stats).expect("overflow event");
            prop_assert_eq!(event.attempted, attempted);
            prop_assert_eq!(event.stored, policy.resolve(attempted, bound));
            let packed = file.packed().expect("default mode is packed");
            // The mirror holds the post-policy value, never the transient.
            prop_assert!(packed.number(pid) <= bound, "lane must stay within M");
            prop_assert_eq!(packed.number(pid), event.stored);
            prop_assert_eq!(packed.number(pid), file.read_number(pid));
            // Every neighbouring lane decodes to its authoritative value.
            prop_assert_eq!(packed.decode_numbers(), file.snapshot_numbers());
            prop_assert_eq!(stats.overflow_attempts(), 1);
        }

        /// The single-writer file only changes the targeted process's cells.
        #[test]
        fn writes_are_confined_to_owner(
            n in 2usize..8,
            writer in 0usize..8,
            value in 0u64..100,
        ) {
            let writer = writer % n;
            let file = RegisterFile::new(n, 255, OverflowPolicy::Wrap);
            let stats = LockStats::new();
            file.write_number(writer, value, &stats);
            file.write_choosing(writer, true);
            for j in 0..n {
                if j != writer {
                    prop_assert_eq!(file.read_number(j), 0);
                    prop_assert!(!file.read_choosing(j));
                }
            }
            prop_assert_eq!(file.read_number(writer), value);
        }
    }
}
