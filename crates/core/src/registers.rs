//! Bounded single-writer multi-reader registers.
//!
//! The paper's Section 3 defines an *overflow* as the attempt to store a value
//! `v > M` in a register of a machine whose registers can hold at most `M`.
//! [`BoundedRegister`] makes that machine limit explicit: every store goes
//! through a bound check, and what happens on overflow is decided by an
//! [`OverflowPolicy`].  The classic Bakery lock uses the policy to *emulate*
//! what a real machine would do (wrap or saturate), which is exactly how the
//! Section 3 failure scenario is reproduced; Bakery++ never triggers the
//! policy at all, which experiment **E1/E2** verify.
//!
//! [`RegisterFile`] groups the `choosing[1..N]` and `number[1..N]` arrays and
//! enforces the paper's single-writer discipline: writes require the process
//! id and only touch that process's own cells.  The type is deliberately the
//! only way the lock implementations can reach the shared memory, so "no
//! process writes into another process's memory" holds by construction.

use std::fmt;

use crossbeam::utils::CachePadded;

use crate::stats::LockStats;
use crate::sync::{AtomicU64, Ordering};

/// What a bounded register does when asked to store a value above its bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OverflowPolicy {
    /// Store `value mod (M + 1)` — what fixed-width machine arithmetic does.
    ///
    /// This is the behaviour that breaks the classic Bakery algorithm: a
    /// wrapped ticket is *smaller* than the tickets of processes already
    /// waiting, so the wrapping process overtakes them and mutual exclusion
    /// is violated (experiment **E1**).
    #[default]
    Wrap,
    /// Clamp the stored value to `M`.
    Saturate,
    /// Panic immediately.  Useful in tests that assert overflow freedom.
    Panic,
    /// Store `value mod (M + 1)` but keep counting the events; identical to
    /// [`OverflowPolicy::Wrap`] at the register level, separated so reports
    /// can distinguish "we knew and accepted" from "silent wrap".
    Report,
}

impl OverflowPolicy {
    /// Applies the policy to an out-of-range value, returning what is stored.
    ///
    /// Panics if the policy is [`OverflowPolicy::Panic`].
    #[must_use]
    pub fn resolve(self, value: u64, bound: u64) -> u64 {
        debug_assert!(value > bound);
        match self {
            OverflowPolicy::Wrap | OverflowPolicy::Report => {
                if bound == u64::MAX {
                    value
                } else {
                    value % (bound + 1)
                }
            }
            OverflowPolicy::Saturate => bound,
            OverflowPolicy::Panic => panic!(
                "register overflow: attempted to store {value} in a register bounded by {bound}"
            ),
        }
    }
}

impl fmt::Display for OverflowPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            OverflowPolicy::Wrap => "wrap",
            OverflowPolicy::Saturate => "saturate",
            OverflowPolicy::Panic => "panic",
            OverflowPolicy::Report => "report",
        };
        f.write_str(name)
    }
}

/// A record of one overflow attempt on a bounded register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverflowEvent {
    /// Index of the register within its register file (the owning pid).
    pub register: usize,
    /// The value the algorithm attempted to store.
    pub attempted: u64,
    /// The register bound `M`.
    pub bound: u64,
    /// The value actually stored after applying the policy.
    pub stored: u64,
}

impl fmt::Display for OverflowEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "overflow on register {}: attempted {} > M={} (stored {})",
            self.register, self.attempted, self.bound, self.stored
        )
    }
}

/// A single bounded register backed by an atomic word.
///
/// The register itself is multi-reader; write discipline (single writer) is
/// enforced one level up by [`RegisterFile`].
#[derive(Debug)]
pub struct BoundedRegister {
    cell: CachePadded<AtomicU64>,
    bound: u64,
    policy: OverflowPolicy,
}

impl BoundedRegister {
    /// Creates a register holding 0 with the given bound and policy.
    #[must_use]
    pub fn new(bound: u64, policy: OverflowPolicy) -> Self {
        Self {
            cell: CachePadded::new(AtomicU64::new(0)),
            bound,
            policy,
        }
    }

    /// The bound `M` of this register.
    #[must_use]
    pub fn bound(&self) -> u64 {
        self.bound
    }

    /// The configured overflow policy.
    #[must_use]
    pub fn policy(&self) -> OverflowPolicy {
        self.policy
    }

    /// Reads the register (SeqCst).
    #[must_use]
    pub fn read(&self) -> u64 {
        self.cell.load(Ordering::SeqCst)
    }

    /// Stores a value known to be within bounds.
    ///
    /// Returns an [`OverflowEvent`] if the value was actually out of range and
    /// the policy had to be applied — callers that believe they never overflow
    /// (Bakery++) treat `Some` as a bug.
    pub fn write(&self, index: usize, value: u64) -> Option<OverflowEvent> {
        if value <= self.bound {
            self.cell.store(value, Ordering::SeqCst);
            None
        } else {
            let stored = self.policy.resolve(value, self.bound);
            self.cell.store(stored, Ordering::SeqCst);
            Some(OverflowEvent {
                register: index,
                attempted: value,
                bound: self.bound,
                stored,
            })
        }
    }

    /// Resets the register to 0 (crash/restart semantics, assumption 1.5).
    pub fn reset(&self) {
        self.cell.store(0, Ordering::SeqCst);
    }
}

/// The shared memory of one lock instance: `choosing[0..n]` and `number[0..n]`.
///
/// All cells start at 0 as the paper requires.  Writes take the writing
/// process's id and are only applied to that process's own cells; reads may
/// target any cell.
#[derive(Debug)]
pub struct RegisterFile {
    choosing: Box<[BoundedRegister]>,
    number: Box<[BoundedRegister]>,
    bound: u64,
    policy: OverflowPolicy,
}

impl RegisterFile {
    /// Creates a register file for `n` processes with ticket bound `M` and the
    /// given overflow policy for the `number` registers.
    ///
    /// The `choosing` registers are boolean-valued, so their bound is 1 and
    /// they can never overflow regardless of policy.
    #[must_use]
    pub fn new(n: usize, bound: u64, policy: OverflowPolicy) -> Self {
        assert!(n > 0, "a lock needs at least one process slot");
        let choosing = (0..n)
            .map(|_| BoundedRegister::new(1, OverflowPolicy::Panic))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let number = (0..n)
            .map(|_| BoundedRegister::new(bound, policy))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            choosing,
            number,
            bound,
            policy,
        }
    }

    /// Number of process slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.number.len()
    }

    /// True when the file has no slots (never the case for a constructed file).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.number.is_empty()
    }

    /// The ticket bound `M`.
    #[must_use]
    pub fn bound(&self) -> u64 {
        self.bound
    }

    /// The overflow policy applied to the `number` registers.
    #[must_use]
    pub fn policy(&self) -> OverflowPolicy {
        self.policy
    }

    /// Reads `choosing[j]`.
    #[must_use]
    pub fn read_choosing(&self, j: usize) -> bool {
        self.choosing[j].read() != 0
    }

    /// Reads `number[j]`.
    #[must_use]
    pub fn read_number(&self, j: usize) -> u64 {
        self.number[j].read()
    }

    /// Snapshot of all `number` registers (one non-atomic read per register,
    /// exactly like the algorithm's `maximum(number[1], …, number[N])` scan).
    #[must_use]
    pub fn snapshot_numbers(&self) -> Vec<u64> {
        self.number.iter().map(BoundedRegister::read).collect()
    }

    /// Writes `choosing[pid]`; only the owning process may call this.
    pub fn write_choosing(&self, pid: usize, value: bool) {
        // `choosing` is 0/1-valued; the bound-1 register cannot overflow.
        let _ = self.choosing[pid].write(pid, u64::from(value));
    }

    /// Writes `number[pid]`, recording any overflow in `stats` and returning
    /// the event if one occurred.
    pub fn write_number(
        &self,
        pid: usize,
        value: u64,
        stats: &LockStats,
    ) -> Option<OverflowEvent> {
        let event = self.number[pid].write(pid, value);
        if let Some(ev) = event {
            stats.record_overflow(ev.attempted);
        }
        event
    }

    /// Resets both of `pid`'s registers to 0 (crash/restart, assumption 1.5).
    pub fn reset_process(&self, pid: usize) {
        self.number[pid].reset();
        self.choosing[pid].reset();
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn policy_wrap_matches_machine_arithmetic() {
        assert_eq!(OverflowPolicy::Wrap.resolve(256, 255), 0);
        assert_eq!(OverflowPolicy::Wrap.resolve(257, 255), 1);
        assert_eq!(OverflowPolicy::Report.resolve(300, 255), 44);
    }

    #[test]
    fn policy_saturate_clamps() {
        assert_eq!(OverflowPolicy::Saturate.resolve(1000, 255), 255);
    }

    #[test]
    #[should_panic(expected = "register overflow")]
    fn policy_panic_panics() {
        let _ = OverflowPolicy::Panic.resolve(256, 255);
    }

    #[test]
    fn policy_display_names() {
        assert_eq!(OverflowPolicy::Wrap.to_string(), "wrap");
        assert_eq!(OverflowPolicy::Saturate.to_string(), "saturate");
        assert_eq!(OverflowPolicy::Panic.to_string(), "panic");
        assert_eq!(OverflowPolicy::Report.to_string(), "report");
    }

    #[test]
    fn register_starts_at_zero() {
        let r = BoundedRegister::new(255, OverflowPolicy::Wrap);
        assert_eq!(r.read(), 0);
        assert_eq!(r.bound(), 255);
        assert_eq!(r.policy(), OverflowPolicy::Wrap);
    }

    #[test]
    fn in_range_write_returns_no_event() {
        let r = BoundedRegister::new(255, OverflowPolicy::Wrap);
        assert!(r.write(0, 255).is_none());
        assert_eq!(r.read(), 255);
    }

    #[test]
    fn out_of_range_write_reports_event() {
        let r = BoundedRegister::new(255, OverflowPolicy::Wrap);
        let ev = r.write(3, 256).expect("overflow event");
        assert_eq!(ev.register, 3);
        assert_eq!(ev.attempted, 256);
        assert_eq!(ev.bound, 255);
        assert_eq!(ev.stored, 0);
        assert_eq!(r.read(), 0);
        assert!(ev.to_string().contains("overflow on register 3"));
    }

    #[test]
    fn reset_returns_to_zero() {
        let r = BoundedRegister::new(10, OverflowPolicy::Saturate);
        r.write(0, 7);
        r.reset();
        assert_eq!(r.read(), 0);
    }

    #[test]
    fn register_file_initial_state_is_all_zero() {
        let file = RegisterFile::new(4, 255, OverflowPolicy::Wrap);
        assert_eq!(file.len(), 4);
        assert!(!file.is_empty());
        for j in 0..4 {
            assert_eq!(file.read_number(j), 0);
            assert!(!file.read_choosing(j));
        }
        assert_eq!(file.snapshot_numbers(), vec![0, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn register_file_rejects_zero_processes() {
        let _ = RegisterFile::new(0, 255, OverflowPolicy::Wrap);
    }

    #[test]
    fn write_number_records_overflow_in_stats() {
        let file = RegisterFile::new(2, 3, OverflowPolicy::Wrap);
        let stats = LockStats::new();
        assert!(file.write_number(0, 3, &stats).is_none());
        assert_eq!(stats.overflow_attempts(), 0);
        let ev = file.write_number(0, 4, &stats).expect("overflow");
        assert_eq!(ev.stored, 0);
        assert_eq!(stats.overflow_attempts(), 1);
    }

    #[test]
    fn reset_process_clears_both_registers() {
        let file = RegisterFile::new(2, 255, OverflowPolicy::Wrap);
        let stats = LockStats::new();
        file.write_choosing(1, true);
        file.write_number(1, 9, &stats);
        file.reset_process(1);
        assert_eq!(file.read_number(1), 0);
        assert!(!file.read_choosing(1));
        // process 0 untouched
        file.write_number(0, 5, &stats);
        file.reset_process(1);
        assert_eq!(file.read_number(0), 5);
    }

    proptest! {
        /// Regardless of the (non-panicking) policy, the stored value never
        /// exceeds the bound: the register is genuinely bounded hardware.
        #[test]
        fn stored_value_never_exceeds_bound(
            bound in 1u64..1000,
            value in 0u64..100_000,
            policy_idx in 0usize..3,
        ) {
            let policy = [OverflowPolicy::Wrap, OverflowPolicy::Saturate, OverflowPolicy::Report][policy_idx];
            let r = BoundedRegister::new(bound, policy);
            let _ = r.write(0, value);
            prop_assert!(r.read() <= bound);
        }

        /// Wrap really is modulo arithmetic, i.e. what an (M+1)-state machine
        /// register would hold.
        #[test]
        fn wrap_is_modulo(bound in 1u64..1_000, value in 0u64..1_000_000) {
            let r = BoundedRegister::new(bound, OverflowPolicy::Wrap);
            let _ = r.write(0, value);
            prop_assert_eq!(r.read(), value % (bound + 1));
        }

        /// The single-writer file only changes the targeted process's cells.
        #[test]
        fn writes_are_confined_to_owner(
            n in 2usize..8,
            writer in 0usize..8,
            value in 0u64..100,
        ) {
            let writer = writer % n;
            let file = RegisterFile::new(n, 255, OverflowPolicy::Wrap);
            let stats = LockStats::new();
            file.write_number(writer, value, &stats);
            file.write_choosing(writer, true);
            for j in 0..n {
                if j != writer {
                    prop_assert_eq!(file.read_number(j), 0);
                    prop_assert!(!file.read_choosing(j));
                }
            }
            prop_assert_eq!(file.read_number(writer), value);
        }
    }
}
