//! The packed snapshot plane: a cache-dense mirror of the register file.
//!
//! The authoritative [`crate::registers::RegisterFile`] keeps every
//! `choosing[i]` / `number[i]` cell in its own `CachePadded` slot so that the
//! single-writer discipline never false-shares between writers.  That layout
//! is ideal for the *writers* but terrible for the *readers*: the doorway's
//! `maximum(number[1..N])` scan and the `L2`/`L3` wait loops each touch `N`
//! separate cache lines per pass.
//!
//! [`PackedSnapshot`] is a densely packed mirror maintained alongside the
//! padded plane:
//!
//! * `choosing` becomes a bitmap — 64 processes per word;
//! * `number` becomes packed lanes — `u8` lanes when the register bound `M`
//!   fits in a byte, `u16` lanes when it fits in a half-word, and plain `u64`
//!   words otherwise — so a scan reads `O(N/8)` cache lines instead of `N`
//!   padded ones, and "is anyone else in the bakery?" is a couple of word
//!   loads (the uncontended **fast path**).
//!
//! The mirror is a performance cache only: the padded plane stays the source
//! of truth for the paper's SWMR discipline and overflow accounting, and the
//! mirror always holds post-policy (bounded) values, so a lane can never be
//! asked to store more than `M`.  Each lane is updated with a single atomic
//! read-modify-write, so concurrent readers of a shared word always observe
//! either the old or the new lane value — never a torn intermediate — which
//! keeps the mirror within the paper's safe-register read model.
//!
//! Memory ordering: lane/bit updates are `Release` RMWs and reads are
//! `Acquire` loads.  The store–load orderings the Bakery proof needs on top
//! of that (doorway handshakes) are provided by explicit `SeqCst` fences in
//! `bakery.rs` / `bakery_pp.rs`, next to the protocol steps they order.

use crate::sync::{AtomicU64, Ordering};

/// How a lock scans the shared registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ScanMode {
    /// Scan the padded authoritative registers with `SeqCst` accesses — the
    /// layout and orderings the seed implementation used.  Kept as the
    /// like-for-like baseline for the `bench-json` perf trajectory and as an
    /// ablation of the snapshot plane.
    Padded,
    /// Scan the packed snapshot plane with acquire/release accesses plus
    /// targeted fences, including the empty-bakery fast path.
    #[default]
    Packed,
}

impl ScanMode {
    /// Short name used in benchmark output and reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ScanMode::Padded => "padded",
            ScanMode::Packed => "packed",
        }
    }
}

/// Ticket lane width of a [`PackedSnapshot`], chosen from the bound `M`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LaneWidth {
    /// 8 tickets per word (`M <= 255`).
    U8,
    /// 4 tickets per word (`M <= 65535`).
    U16,
    /// 1 ticket per word (larger bounds).
    U64,
}

impl LaneWidth {
    /// The narrowest lane that can hold every legal value of a register
    /// bounded by `bound`.
    #[must_use]
    pub fn for_bound(bound: u64) -> Self {
        if bound <= u64::from(u8::MAX) {
            LaneWidth::U8
        } else if bound <= u64::from(u16::MAX) {
            LaneWidth::U16
        } else {
            LaneWidth::U64
        }
    }

    /// True when a register bounded by `bound` fits this lane.
    #[must_use]
    pub fn fits(self, bound: u64) -> bool {
        match self {
            LaneWidth::U8 => bound <= u64::from(u8::MAX),
            LaneWidth::U16 => bound <= u64::from(u16::MAX),
            LaneWidth::U64 => true,
        }
    }

    /// The lane width [`PackedSnapshot::new`] picks for `n` processes with
    /// bound `bound`.
    ///
    /// Narrow lanes exist to keep the scan footprint small, but every write
    /// to a shared multi-lane word is a CAS splice, whereas a full-word
    /// (`U64`) lane is a plain store.  So the rule is: take the **widest**
    /// lane whose ticket array still fits in one cache line (8 words) — at
    /// small `n` density buys nothing and wide lanes avoid the RMW tax — and
    /// fall back to the narrowest lane that fits `bound` once `n` is large
    /// enough that density is what matters.
    #[must_use]
    pub fn for_config(n: usize, bound: u64) -> Self {
        for width in [LaneWidth::U64, LaneWidth::U16, LaneWidth::U8] {
            if width.fits(bound) && n.div_ceil(width.lanes_per_word()) <= 8 {
                return width;
            }
        }
        Self::for_bound(bound)
    }

    /// Lane width in bits.
    #[must_use]
    pub const fn bits(self) -> u32 {
        match self {
            LaneWidth::U8 => 8,
            LaneWidth::U16 => 16,
            LaneWidth::U64 => 64,
        }
    }

    /// Number of ticket lanes packed into one 64-bit word.
    #[must_use]
    pub const fn lanes_per_word(self) -> usize {
        match self {
            LaneWidth::U8 => 8,
            LaneWidth::U16 => 4,
            LaneWidth::U64 => 1,
        }
    }
}

/// The packed mirror of one lock's `choosing[0..n]` / `number[0..n]` arrays.
#[derive(Debug)]
pub struct PackedSnapshot {
    width: LaneWidth,
    n: usize,
    /// One bit per process: 1 while `choosing[pid]` is set.
    choosing: Box<[AtomicU64]>,
    /// Packed `number` lanes, `lanes_per_word()` tickets per word.
    lanes: Box<[AtomicU64]>,
}

impl PackedSnapshot {
    /// Creates an all-zero mirror for `n` processes with register bound
    /// `bound`, choosing the lane width via [`LaneWidth::for_config`].
    #[must_use]
    pub fn new(n: usize, bound: u64) -> Self {
        Self::with_width(n, bound, LaneWidth::for_config(n, bound))
    }

    /// Creates a mirror with an explicit lane width (tests and ablations).
    ///
    /// # Panics
    /// Panics if `width` cannot hold every value a register bounded by
    /// `bound` may store.
    #[must_use]
    pub fn with_width(n: usize, bound: u64, width: LaneWidth) -> Self {
        assert!(n > 0, "a snapshot needs at least one process slot");
        assert!(
            width.fits(bound),
            "a {width:?} lane cannot hold values up to {bound}"
        );
        let choosing_words = n.div_ceil(64);
        let lane_words = n.div_ceil(width.lanes_per_word());
        Self {
            width,
            n,
            choosing: (0..choosing_words).map(|_| AtomicU64::new(0)).collect(),
            lanes: (0..lane_words).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of process slots mirrored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the mirror has no slots (never the case once constructed).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The lane width chosen from the register bound.
    #[must_use]
    pub fn width(&self) -> LaneWidth {
        self.width
    }

    /// Total words a full scan of both planes reads — the `O(N/8)` figure the
    /// docs and tests refer to (vs `2N` padded cache lines).
    #[must_use]
    pub fn word_count(&self) -> usize {
        self.choosing.len() + self.lanes.len()
    }

    /// The lane-plane word index holding `pid`'s ticket — the granularity at
    /// which the wait plane keys its `L3` park sites (every store to the word
    /// wakes the waiters keyed on it; same-word neighbours surface as
    /// spurious wakeups, which the wait contract permits).
    #[must_use]
    pub fn lane_word(&self, pid: usize) -> usize {
        self.lane_pos(pid).0
    }

    /// (word index, bit shift, lane mask) of `pid`'s ticket lane.
    fn lane_pos(&self, pid: usize) -> (usize, u32, u64) {
        let lpw = self.width.lanes_per_word();
        let shift = (pid % lpw) as u32 * self.width.bits();
        let mask = if self.width.bits() == 64 {
            u64::MAX
        } else {
            ((1u64 << self.width.bits()) - 1) << shift
        };
        (pid / lpw, shift, mask)
    }

    /// Mirrors a write of `number[pid] := value`.
    ///
    /// `value` must already be bounded (the authoritative register applies
    /// the overflow policy first), so it always fits the lane.  The update is
    /// one atomic RMW: readers of the shared word see the old or the new lane
    /// value, never a blend.
    pub fn set_number(&self, pid: usize, value: u64) {
        let (word, shift, mask) = self.lane_pos(pid);
        debug_assert!(
            value <= (mask >> shift),
            "value {value} does not fit a {:?} lane",
            self.width
        );
        if self.width.bits() == 64 {
            self.lanes[word].store(value, Ordering::Release);
        } else {
            let _ = self.lanes[word].fetch_update(Ordering::Release, Ordering::Relaxed, |w| { // mem: mirror-publish
                Some((w & !mask) | (value << shift))
            });
        }
    }

    /// Mirrors a write of `choosing[pid] := flag`.
    pub fn set_choosing(&self, pid: usize, flag: bool) {
        let word = pid / 64;
        let bit = 1u64 << (pid % 64);
        if flag {
            self.choosing[word].fetch_or(bit, Ordering::Release);
        } else {
            self.choosing[word].fetch_and(!bit, Ordering::Release);
        }
    }

    /// Reads `number[pid]` from the mirror.
    #[must_use]
    pub fn number(&self, pid: usize) -> u64 {
        let (word, shift, mask) = self.lane_pos(pid);
        (self.lanes[word].load(Ordering::Acquire) & mask) >> shift
    }

    /// Reads `choosing[pid]` from the mirror.
    #[must_use]
    pub fn choosing(&self, pid: usize) -> bool {
        let word = pid / 64;
        let bit = 1u64 << (pid % 64);
        self.choosing[word].load(Ordering::Acquire) & bit != 0
    }

    /// The doorway's `maximum(number[1], ..., number[N])`, reading
    /// `O(N / lanes_per_word)` words and skipping all-zero words outright.
    #[must_use]
    pub fn max_number(&self) -> u64 {
        let bits = self.width.bits();
        let mut max = 0u64;
        for word in &self.lanes {
            let mut value = word.load(Ordering::Acquire);
            if value == 0 {
                continue;
            }
            if bits == 64 {
                max = max.max(value);
            } else {
                let lane_mask = (1u64 << bits) - 1;
                while value != 0 {
                    max = max.max(value & lane_mask);
                    value >>= bits;
                }
            }
        }
        max
    }

    /// True when any process other than `pid` is visible in the bakery —
    /// i.e. has its choosing bit set or holds a non-zero ticket.
    ///
    /// Reads the choosing plane before the ticket plane, preserving the
    /// `L2`-before-`L3` observation order of the per-process wait loops; a
    /// `false` return is exactly the evidence (`choosing[j] = 0` then
    /// `number[j] = 0` for every other `j`) on which the classic loops would
    /// terminate without waiting.
    #[must_use]
    pub fn has_other_contenders(&self, pid: usize) -> bool {
        let choosing_word = pid / 64;
        let choosing_bit = 1u64 << (pid % 64);
        for (index, word) in self.choosing.iter().enumerate() {
            let mut value = word.load(Ordering::Acquire);
            if index == choosing_word {
                value &= !choosing_bit;
            }
            if value != 0 {
                return true;
            }
        }
        let (lane_word, _, lane_mask) = self.lane_pos(pid);
        for (index, word) in self.lanes.iter().enumerate() {
            let mut value = word.load(Ordering::Acquire);
            if index == lane_word {
                value &= !lane_mask;
            }
            if value != 0 {
                return true;
            }
        }
        false
    }

    /// Decodes the mirrored `number` array (test / verification helper).
    #[must_use]
    pub fn decode_numbers(&self) -> Vec<u64> {
        (0..self.n).map(|pid| self.number(pid)).collect()
    }

    /// Decodes the mirrored `choosing` array (test / verification helper).
    #[must_use]
    pub fn decode_choosing(&self) -> Vec<bool> {
        (0..self.n).map(|pid| self.choosing(pid)).collect()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn lane_width_tracks_bound() {
        assert_eq!(LaneWidth::for_bound(1), LaneWidth::U8);
        assert_eq!(LaneWidth::for_bound(255), LaneWidth::U8);
        assert_eq!(LaneWidth::for_bound(256), LaneWidth::U16);
        assert_eq!(LaneWidth::for_bound(65_535), LaneWidth::U16);
        assert_eq!(LaneWidth::for_bound(65_536), LaneWidth::U64);
        assert_eq!(LaneWidth::for_bound(u64::MAX), LaneWidth::U64);
    }

    #[test]
    fn scan_mode_names() {
        assert_eq!(ScanMode::Padded.name(), "padded");
        assert_eq!(ScanMode::Packed.name(), "packed");
        assert_eq!(ScanMode::default(), ScanMode::Packed);
    }

    #[test]
    fn adaptive_width_prefers_wide_lanes_at_small_n() {
        // n <= 8: one cache line of u64 words either way, so take the plain
        // store (u64 lane) over the CAS splice.
        assert_eq!(LaneWidth::for_config(4, 255), LaneWidth::U64);
        assert_eq!(LaneWidth::for_config(8, 65_535), LaneWidth::U64);
        // Mid-size: u16 lanes keep the array within one line.
        assert_eq!(LaneWidth::for_config(9, 65_535), LaneWidth::U16);
        assert_eq!(LaneWidth::for_config(32, 200), LaneWidth::U16);
        // Large n: density wins, narrowest lane that fits the bound.
        assert_eq!(LaneWidth::for_config(33, 255), LaneWidth::U8);
        assert_eq!(LaneWidth::for_config(128, 255), LaneWidth::U8);
        assert_eq!(LaneWidth::for_config(128, 65_535), LaneWidth::U16);
        // Big bound forces u64 no matter the size.
        assert_eq!(LaneWidth::for_config(128, u64::MAX), LaneWidth::U64);
    }

    #[test]
    fn word_counts_are_dense() {
        // 128 processes with u8 lanes: 2 choosing words + 16 lane words,
        // versus 256 padded cache lines in the authoritative plane.
        let snap = PackedSnapshot::new(128, 255);
        assert_eq!(snap.width(), LaneWidth::U8);
        assert_eq!(snap.word_count(), 2 + 16);
        assert_eq!(snap.len(), 128);
        assert!(!snap.is_empty());
        // u16 lanes.
        assert_eq!(PackedSnapshot::with_width(6, 65_535, LaneWidth::U16).word_count(), 1 + 2);
        // u64 lanes.
        assert_eq!(PackedSnapshot::new(3, u64::MAX).word_count(), 1 + 3);
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn undersized_lane_width_is_rejected() {
        let _ = PackedSnapshot::with_width(4, 65_535, LaneWidth::U8);
    }

    #[test]
    fn set_and_read_round_trip_all_widths() {
        for (bound, width) in [
            (255u64, LaneWidth::U8),
            (65_535, LaneWidth::U16),
            (u64::MAX, LaneWidth::U64),
        ] {
            let snap = PackedSnapshot::with_width(9, bound, width);
            for pid in 0..9 {
                let value = (pid as u64 * 31 + 1).min(bound);
                snap.set_number(pid, value);
                snap.set_choosing(pid, pid % 2 == 0);
            }
            for pid in 0..9 {
                let expected = (pid as u64 * 31 + 1).min(bound);
                assert_eq!(snap.number(pid), expected, "bound {bound} pid {pid}");
                assert_eq!(snap.choosing(pid), pid % 2 == 0);
            }
            // Overwrites replace, not accumulate.
            snap.set_number(3, 7);
            assert_eq!(snap.number(3), 7);
            snap.set_number(3, 0);
            assert_eq!(snap.number(3), 0);
            snap.set_choosing(2, false);
            assert!(!snap.choosing(2));
        }
    }

    #[test]
    fn max_scan_matches_decoded_maximum() {
        let snap = PackedSnapshot::new(20, 255);
        assert_eq!(snap.max_number(), 0);
        snap.set_number(3, 9);
        snap.set_number(17, 250);
        snap.set_number(8, 41);
        assert_eq!(snap.max_number(), 250);
        assert_eq!(
            snap.max_number(),
            snap.decode_numbers().into_iter().max().unwrap()
        );
    }

    #[test]
    fn contender_check_ignores_self_and_sees_others() {
        let snap = PackedSnapshot::new(70, 65_535); // spans two choosing words
        assert!(!snap.has_other_contenders(0));
        snap.set_number(0, 5);
        snap.set_choosing(0, true);
        assert!(!snap.has_other_contenders(0), "own state is masked out");
        assert!(snap.has_other_contenders(1), "sees pid 0 from elsewhere");
        snap.set_choosing(69, true); // second choosing word
        assert!(snap.has_other_contenders(0));
        snap.set_choosing(69, false);
        snap.set_number(69, 1); // second-word lane
        assert!(snap.has_other_contenders(0));
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_slots_rejected() {
        let _ = PackedSnapshot::new(0, 255);
    }

    #[test]
    fn concurrent_single_writer_lanes_never_corrupt_neighbours() {
        // Eight writers share lane words (u8 lanes); each hammers its own
        // lane.  Afterwards every lane must hold its writer's final value —
        // the atomic splice never clobbers a neighbour.
        use std::sync::Arc;
        let snap = Arc::new(PackedSnapshot::with_width(8, 255, LaneWidth::U8));
        std::thread::scope(|scope| {
            for pid in 0..8 {
                let snap = Arc::clone(&snap);
                scope.spawn(move || {
                    for round in 0..2_000u64 {
                        snap.set_number(pid, (round + pid as u64) % 256);
                        snap.set_choosing(pid, round % 2 == 0);
                    }
                    snap.set_number(pid, pid as u64 + 1);
                    snap.set_choosing(pid, false);
                });
            }
        });
        for pid in 0..8 {
            assert_eq!(snap.number(pid), pid as u64 + 1);
            assert!(!snap.choosing(pid));
        }
    }
}
