//! The session plane: dynamic membership over a fixed-capacity lock.
//!
//! Every lock in this suite is built for a fixed set of `N` processes named
//! `0..N` — the paper's model.  A lock *service*, by contrast, faces an
//! unbounded population of transient clients: far more clients than slots,
//! arriving and departing continuously.  The [`SessionPlane`] bridges the two
//! worlds: it leases the underlying lock's pid slots to clients as RAII
//! [`Session`] handles, recycling each pid as soon as its session detaches.
//!
//! ## Leasing protocol
//!
//! Each pid has one **seat word** (an `AtomicU64`):
//!
//! ```text
//! bit 0      LEASED   a session currently owns this pid
//! bit 1      BUSY     the owning session is inside acquire…release
//! bits 2..   GEN      bumped once per detach (lease generation)
//! ```
//!
//! * **attach** — one CAS per probed seat, `free(g) → leased(g)`; lock-free
//!   (a failed CAS means another client won that seat, move to the next).
//! * **lock** — CAS `leased(g) → leased(g)|BUSY`, then the underlying
//!   [`RawMutexAlgorithm::acquire`]; the guard clears `BUSY` after `release`.
//! * **detach** — CAS `leased(g) → free(g+1)`: the generation bump is what
//!   makes recycling safe (below).
//!
//! ## Why the generation tag
//!
//! A recycled slot must never alias an in-flight acquisition.  Two races are
//! in scope:
//!
//! 1. **detach vs. own acquisition** — detach refuses to complete while the
//!    `BUSY` bit is set (and the RAII types make this unreachable anyway:
//!    a [`SessionGuard`] borrows its [`Session`]).
//! 2. **stale handle vs. recycled seat** — after [`SessionPlane::force_detach`]
//!    evicts a session (the operator's "client crashed in its noncritical
//!    section" action, paper assumptions 1.5–1.7), the seat can be re-leased.
//!    Every operation of the stale session compares the full seat word,
//!    *including the generation*: its `lock()` CAS fails loudly instead of
//!    acquiring a pid that now belongs to someone else, and its drop sees a
//!    foreign generation and walks away instead of freeing the new lease —
//!    the classic ABA that a plain leased-bit could not detect.
//!
//! The plane claims every [`Slot`] of the underlying lock at construction, so
//! sessions are the *only* path to the lock's pids — a plain `Slot` user
//! cannot collide with a leased session.
//!
//! Attach/detach totals are recorded in the underlying lock's [`LockStats`]
//! ([`LockStats::attaches`] / [`LockStats::detaches`]), so workload reports
//! can show churn next to critical-section counts.

use std::fmt;
use std::sync::Arc;

use crate::backoff::Backoff;
use crate::raw::RawMutexAlgorithm;
use crate::slots::Slot;
use crate::stats::LockStats;
use crate::sync::{AtomicU64, Ordering};

/// Seat-word bit: a session currently owns this pid.
const LEASED: u64 = 0b01;
/// Seat-word bit: the owning session is between acquire and release.
const BUSY: u64 = 0b10;
/// Shift of the lease generation within the seat word.
const GEN_SHIFT: u32 = 2;

#[inline]
fn seat_word(gen: u64, flags: u64) -> u64 {
    (gen << GEN_SHIFT) | flags
}

#[inline]
fn seat_gen(word: u64) -> u64 {
    word >> GEN_SHIFT
}

/// Errors surfaced by [`SessionPlane::try_attach`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionError {
    /// Every pid slot of the underlying lock is currently leased.
    Exhausted {
        /// Slot capacity of the underlying lock.
        capacity: usize,
    },
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Exhausted { capacity } => {
                write!(f, "all {capacity} pid slots are leased to live sessions")
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// Lock-free pid-slot leasing over any [`RawMutexAlgorithm`].
///
/// ```
/// use std::sync::Arc;
/// use bakery_core::{BakeryPlusPlusLock, RawMutexAlgorithm};
/// use bakery_core::session::SessionPlane;
///
/// let lock: Arc<dyn RawMutexAlgorithm> = Arc::new(BakeryPlusPlusLock::with_bound(4, 255));
/// let plane = SessionPlane::new(lock);
/// let session = plane.attach();           // lease a pid
/// {
///     let _guard = session.lock();        // enter the critical section
/// }
/// drop(session);                          // pid recycled for the next client
/// assert_eq!(plane.stats().attaches(), 1);
/// assert_eq!(plane.stats().detaches(), 1);
/// ```
pub struct SessionPlane {
    lock: Arc<dyn RawMutexAlgorithm>,
    seats: Box<[AtomicU64]>,
    /// Exclusive claim on every pid of the underlying lock: holding the
    /// `Slot`s makes the plane the only way to drive the lock.
    _slots: Vec<Slot>,
}

impl fmt::Debug for SessionPlane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionPlane")
            .field("algorithm", &self.lock.algorithm_name())
            .field("capacity", &self.capacity())
            .field("live_sessions", &self.live_sessions())
            .finish()
    }
}

impl SessionPlane {
    /// Builds a session plane over `lock`, claiming every one of its slots.
    ///
    /// # Panics
    /// Panics if any slot of `lock` is already claimed — the plane must be
    /// the lock's sole driver for the leasing guarantees to hold.
    #[must_use]
    pub fn new(lock: Arc<dyn RawMutexAlgorithm>) -> Arc<Self> {
        let capacity = lock.capacity();
        let slots: Vec<Slot> = (0..capacity)
            .map(|pid| {
                lock.register_exact(pid)
                    .expect("the session plane must own every slot of its lock")
            })
            .collect();
        Arc::new(Self {
            lock,
            seats: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
            _slots: slots,
        })
    }

    /// Number of pid slots (the maximum number of concurrently live
    /// sessions).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.seats.len()
    }

    /// The underlying lock algorithm.
    #[must_use]
    pub fn algorithm(&self) -> &dyn RawMutexAlgorithm {
        &*self.lock
    }

    /// The underlying lock's statistics block (attach/detach totals included).
    #[must_use]
    pub fn stats(&self) -> &LockStats {
        self.lock.stats()
    }

    /// Number of currently leased seats.
    #[must_use]
    pub fn live_sessions(&self) -> usize {
        self.seats
            .iter()
            .filter(|seat| seat.load(Ordering::SeqCst) & LEASED != 0)
            .count()
    }

    /// Leases a free pid, or reports exhaustion without blocking.
    pub fn try_attach(self: &Arc<Self>) -> Result<Session, SessionError> {
        for pid in 0..self.capacity() {
            let seat = &self.seats[pid];
            let word = seat.load(Ordering::SeqCst);
            if word & LEASED != 0 {
                continue;
            }
            let gen = seat_gen(word);
            if seat
                .compare_exchange(
                    seat_word(gen, 0),
                    seat_word(gen, LEASED),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_ok()
            {
                self.lock.stats().record_attach();
                return Ok(Session {
                    plane: Arc::clone(self),
                    pid,
                    gen,
                });
            }
        }
        Err(SessionError::Exhausted {
            capacity: self.capacity(),
        })
    }

    /// Leases a pid, backing off until one frees up.
    ///
    /// This is the client-facing entry point of the E11 "lock service"
    /// regime: far more clients than seats, each waiting its turn to attach.
    #[must_use]
    pub fn attach(self: &Arc<Self>) -> Session {
        let mut backoff = Backoff::new();
        loop {
            match self.try_attach() {
                Ok(session) => return session,
                Err(SessionError::Exhausted { .. }) => backoff.snooze(),
            }
        }
    }

    /// Evicts the session on `pid`, if any, making its seat leasable again.
    ///
    /// Models the operator action for a client that crashed in its
    /// noncritical section (paper assumptions 1.5–1.7).  Spins out an
    /// acquisition that is still in flight (`BUSY`), then bumps the lease
    /// generation so every later operation of the stale [`Session`] handle
    /// fails its seat-word comparison instead of aliasing the next lease.
    ///
    /// Returns `true` when a lease was evicted.
    pub fn force_detach(&self, pid: usize) -> bool {
        let seat = &self.seats[pid];
        let mut backoff = Backoff::new();
        loop {
            let word = seat.load(Ordering::SeqCst);
            if word & LEASED == 0 {
                return false;
            }
            if word & BUSY != 0 {
                // Never reclaim mid-acquisition: wait for the guard to drop.
                backoff.snooze();
                continue;
            }
            if self.detach_seat(pid, seat_gen(word)) {
                return true;
            }
        }
    }

    /// CAS `leased(gen) → free(gen + 1)`.  Fails (returns `false`) when the
    /// seat is busy, already free, or on a different generation — i.e. when
    /// the caller's view of the lease is stale.
    fn detach_seat(&self, pid: usize, gen: u64) -> bool {
        let freed = self.seats[pid]
            .compare_exchange(
                seat_word(gen, LEASED),
                seat_word(gen.wrapping_add(1), 0),
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_ok();
        if freed {
            self.lock.stats().record_detach();
        }
        freed
    }
}

/// A leased pid on a [`SessionPlane`]; detaches (recycling the pid) on drop.
///
/// The session is the unit of dynamic membership: `attach → lock/unlock… →
/// detach` is one client's lifetime, and the underlying fixed-`N` lock only
/// ever sees its stable pid set.
pub struct Session {
    plane: Arc<SessionPlane>,
    pid: usize,
    gen: u64,
}

impl Session {
    /// The leased pid (the process id this client plays).
    #[must_use]
    pub fn pid(&self) -> usize {
        self.pid
    }

    /// The lease generation of this session's seat.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// The plane this session is attached to.
    #[must_use]
    pub fn plane(&self) -> &Arc<SessionPlane> {
        &self.plane
    }

    /// Marks the seat `BUSY` for the duration of an acquisition.
    ///
    /// # Panics
    /// Panics if the session was evicted by [`SessionPlane::force_detach`]
    /// and its seat re-leased — the generation mismatch is detected here,
    /// which is exactly the aliasing the tag exists to prevent.
    fn mark_busy(&self) {
        let leased = seat_word(self.gen, LEASED);
        self.plane.seats[self.pid]
            .compare_exchange(
                leased,
                leased | BUSY,
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .unwrap_or_else(|actual| {
                panic!(
                    "stale session: pid {} generation {} was force-detached \
                     (seat word is now {actual:#x})",
                    self.pid, self.gen
                )
            });
    }

    fn clear_busy(&self) {
        // Only this session's thread sets BUSY, so a plain store suffices; a
        // concurrent force_detach is spinning on this bit and will observe it.
        self.plane.seats[self.pid].store(seat_word(self.gen, LEASED), Ordering::SeqCst);
    }

    /// Enters the critical section, blocking until granted.
    ///
    /// # Panics
    /// Panics if the session is stale (see [`SessionPlane::force_detach`]).
    #[must_use]
    pub fn lock(&self) -> SessionGuard<'_> {
        self.mark_busy();
        self.plane.lock.acquire(self.pid);
        self.plane.lock.stats().record_cs_entry();
        SessionGuard { session: self }
    }

    /// One non-blocking attempt to enter the critical section (may fail
    /// spuriously, like [`RawMutexAlgorithm::try_acquire`]).
    ///
    /// # Panics
    /// Panics if the session is stale (see [`SessionPlane::force_detach`]).
    #[must_use]
    pub fn try_lock(&self) -> Option<SessionGuard<'_>> {
        self.mark_busy();
        if self.plane.lock.try_acquire(self.pid) {
            self.plane.lock.stats().record_cs_entry();
            Some(SessionGuard { session: self })
        } else {
            self.clear_busy();
            None
        }
    }
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("pid", &self.pid)
            .field("generation", &self.gen)
            .field("algorithm", &self.plane.lock.algorithm_name())
            .finish()
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        // A stale session (evicted seat, possibly re-leased at a higher
        // generation) must walk away without freeing the *new* lease: the
        // generation comparison inside detach_seat makes its CAS fail.
        let _ = self.plane.detach_seat(self.pid, self.gen);
    }
}

/// A critical section held through a [`Session`]; releases on drop.
pub struct SessionGuard<'a> {
    session: &'a Session,
}

impl SessionGuard<'_> {
    /// The pid holding the critical section.
    #[must_use]
    pub fn pid(&self) -> usize {
        self.session.pid
    }
}

impl fmt::Debug for SessionGuard<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionGuard")
            .field("pid", &self.session.pid)
            .finish()
    }
}

impl Drop for SessionGuard<'_> {
    fn drop(&mut self) {
        self.session.plane.lock.release(self.session.pid);
        self.session.clear_busy();
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::bakery_pp::BakeryPlusPlusLock;
    use crate::tree::TreeBakery;
    use proptest::prelude::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};
    use std::sync::Mutex;

    fn plane_over_pp(n: usize) -> Arc<SessionPlane> {
        SessionPlane::new(Arc::new(BakeryPlusPlusLock::with_bound(n, 255)))
    }

    #[test]
    fn attach_lock_detach_roundtrip() {
        let plane = plane_over_pp(2);
        let s = plane.attach();
        assert_eq!(s.pid(), 0);
        assert_eq!(s.generation(), 0);
        {
            let g = s.lock();
            assert_eq!(g.pid(), 0);
        }
        drop(s);
        assert_eq!(plane.live_sessions(), 0);
        assert_eq!(plane.stats().attaches(), 1);
        assert_eq!(plane.stats().detaches(), 1);
        assert_eq!(plane.stats().cs_entries(), 1);
        // The pid was recycled with a bumped generation.
        let s = plane.attach();
        assert_eq!(s.pid(), 0);
        assert_eq!(s.generation(), 1);
    }

    #[test]
    fn exhaustion_is_reported_and_clears() {
        let plane = plane_over_pp(2);
        let a = plane.attach();
        let b = plane.attach();
        assert_eq!((a.pid(), b.pid()), (0, 1));
        assert_eq!(
            plane.try_attach().unwrap_err(),
            SessionError::Exhausted { capacity: 2 }
        );
        assert!(plane
            .try_attach()
            .unwrap_err()
            .to_string()
            .contains("leased"));
        drop(a);
        assert_eq!(plane.try_attach().unwrap().pid(), 0);
    }

    #[test]
    fn plane_owns_every_slot_of_the_lock() {
        let lock = Arc::new(BakeryPlusPlusLock::with_bound(3, 255));
        let plane = SessionPlane::new(Arc::clone(&lock) as Arc<dyn RawMutexAlgorithm>);
        // No raw Slot can collide with a session.
        assert!(lock.register().is_err());
        let _s = plane.attach();
    }

    #[test]
    #[should_panic(expected = "must own every slot")]
    fn plane_rejects_a_lock_with_claimed_slots() {
        let lock = Arc::new(BakeryPlusPlusLock::with_bound(2, 255));
        let _claimed = lock.register().unwrap();
        let _ = SessionPlane::new(lock);
    }

    #[test]
    fn try_lock_through_a_session() {
        let plane = plane_over_pp(2);
        let s = plane.attach();
        {
            let g = s.try_lock().expect("uncontended try_lock");
            assert_eq!(g.pid(), 0);
        }
        assert_eq!(plane.stats().cs_entries(), 1);
    }

    #[test]
    fn force_detach_recycles_and_stale_session_is_refused() {
        let plane = plane_over_pp(2);
        let stale = plane.attach();
        assert!(plane.force_detach(stale.pid()));
        assert_eq!(plane.live_sessions(), 0);
        // The seat re-leases at a higher generation…
        let fresh = plane.attach();
        assert_eq!(fresh.pid(), stale.pid());
        assert_eq!(fresh.generation(), stale.generation() + 1);
        // …and the stale handle can no longer acquire through it.
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = stale.lock();
        }));
        assert!(err.is_err(), "stale session must panic, not alias");
        // Dropping the stale handle must not free the fresh lease.
        drop(stale);
        assert_eq!(plane.live_sessions(), 1);
        assert!(fresh.try_lock().is_some());
        assert_eq!(plane.stats().attaches(), 2);
        assert_eq!(plane.stats().detaches(), 1, "the stale drop detached nothing");
    }

    #[test]
    fn force_detach_on_a_free_seat_is_a_noop() {
        let plane = plane_over_pp(2);
        assert!(!plane.force_detach(1));
        assert_eq!(plane.stats().detaches(), 0);
    }

    #[test]
    fn churn_over_a_tree_lock_recycles_without_aliasing() {
        // 4 worker threads churn 64 clients each over a 4-slot tree lock:
        // every live (pid) must be unique at all times.
        let plane = SessionPlane::new(Arc::new(TreeBakery::with_arity(4, 2)));
        let live: Mutex<HashSet<usize>> = Mutex::new(HashSet::new());
        let in_cs = StdAtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..64 {
                        let session = plane.attach();
                        assert!(
                            live.lock().unwrap().insert(session.pid()),
                            "two live sessions on pid {}",
                            session.pid()
                        );
                        for _ in 0..3 {
                            let _g = session.lock();
                            assert_eq!(in_cs.fetch_add(1, StdOrdering::SeqCst), 0);
                            in_cs.fetch_sub(1, StdOrdering::SeqCst);
                        }
                        assert!(live.lock().unwrap().remove(&session.pid()));
                        drop(session);
                    }
                });
            }
        });
        assert_eq!(plane.stats().attaches(), 256);
        assert_eq!(plane.stats().detaches(), 256);
        assert_eq!(plane.stats().cs_entries(), 768);
        assert_eq!(plane.live_sessions(), 0);
    }

    proptest! {
        /// Under random attach/try-attach/detach churn across real threads,
        /// no two live sessions ever hold the same slot, and attach/detach
        /// totals balance to the live count at every quiescent point.
        #[test]
        fn no_two_live_sessions_share_a_slot(
            capacity in 1usize..6,
            threads in 2usize..5,
            churns in 4u64..24,
            seed in 0u64..u64::MAX,
        ) {
            let plane = plane_over_pp(capacity);
            let live: Mutex<HashSet<usize>> = Mutex::new(HashSet::new());
            let violations = StdAtomicU64::new(0);
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let plane = &plane;
                    let live = &live;
                    let violations = &violations;
                    scope.spawn(move || {
                        let mut state = seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                        for _ in 0..churns {
                            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                            // Mix blocking and non-blocking attaches.
                            let session = if state & 4 == 0 {
                                match plane.try_attach() {
                                    Ok(s) => s,
                                    Err(SessionError::Exhausted { .. }) => continue,
                                }
                            } else {
                                plane.attach()
                            };
                            if !live.lock().unwrap().insert(session.pid()) {
                                violations.fetch_add(1, StdOrdering::SeqCst);
                            }
                            if state & 2 == 0 {
                                let _g = session.lock();
                            }
                            if !live.lock().unwrap().remove(&session.pid()) {
                                violations.fetch_add(1, StdOrdering::SeqCst);
                            }
                            drop(session);
                        }
                    });
                }
            });
            prop_assert_eq!(violations.load(StdOrdering::SeqCst), 0,
                "a pid was leased to two live sessions");
            prop_assert_eq!(plane.live_sessions(), 0);
            let stats = plane.stats();
            prop_assert_eq!(stats.attaches(), stats.detaches());
        }
    }
}
