//! The session plane: dynamic membership over a fixed-capacity lock.
//!
//! Every lock in this suite is built for a fixed set of `N` processes named
//! `0..N` — the paper's model.  A lock *service*, by contrast, faces an
//! unbounded population of transient clients: far more clients than slots,
//! arriving and departing continuously.  The [`SessionPlane`] bridges the two
//! worlds: it leases the underlying lock's pid slots to clients as RAII
//! [`Session`] handles, recycling each pid as soon as its session detaches.
//!
//! ## Leasing protocol
//!
//! Each pid has one **seat word** (an `AtomicU64`):
//!
//! ```text
//! bit 0      LEASED       a session currently owns this pid
//! bit 1      BUSY         the owning session is inside acquire…release
//! bit 2      IN_CS        the owning session holds the critical section
//! bit 3      QUARANTINED  the holder died inside the CS; recovery pending
//! bits 4..   GEN          bumped once per detach (lease generation)
//! ```
//!
//! * **attach** — one CAS per probed seat, `free(g) → leased(g)`; lock-free
//!   (a failed CAS means another client won that seat, move to the next).
//! * **lock** — CAS `leased(g) → leased(g)|BUSY`, then the underlying
//!   [`RawMutexAlgorithm::acquire`], then CAS `… → …|IN_CS`; the guard
//!   retraces the transitions in reverse around `release`.
//! * **detach** — CAS `leased(g) → free(g+1)`: the generation bump is what
//!   makes recycling safe (below).
//!
//! ## Seat lifecycle (crash recovery included)
//!
//! ```text
//!                 attach                  mark_busy                acquire
//!   FREE(g) ───────────────► LEASED(g) ───────────► BUSY(g) ───────────────► IN_CS(g)
//!      ▲                        │  ▲                   │                        │
//!      │        detach /        │  │    release +      │                        │
//!      │◄───────────────────────┘  └───────────────────┘                        │
//!      │        Session::drop           clear_busy                              │
//!      │                                                                        │
//!      │                       reap() on an expired lease:                      │
//!      │   LEASED / BUSY seat: crash_abort(pid) + recycle ──► FREE(g+1)         │
//!      │   IN_CS seat: the CS must survive the holder ──────────────┐           │
//!      │                                                            ▼           ▼
//!      └───────────────────────────────────────────────────── QUARANTINED(g) ◄──
//!                recover_quarantined → RecoveredSeat drop               force_detach
//!                (release on the dead holder's behalf)                  while IN_CS
//! ```
//!
//! Every transition is a CAS on the full seat word, so each edge is taken by
//! exactly one contender.  The one that matters for crash recovery: the
//! quarantine CAS (`IN_CS(g) → QUARANTINED(g)`) *transfers ownership of the
//! release*.  A holder whose exit CAS fails — because a reaper quarantined
//! its seat between `release`-intent and the CAS — walks away **without**
//! touching the lock; the [`RecoveredSeat`] guard performs the one and only
//! release.  Mutual exclusion is therefore never silently broken: a
//! quarantined seat keeps the underlying lock held (blocking, not aliasing)
//! until an operator explicitly recovers it, exactly like a poisoned
//! `std::sync::Mutex`.
//!
//! ## Why the generation tag
//!
//! A recycled slot must never alias an in-flight acquisition.  Two races are
//! in scope:
//!
//! 1. **detach vs. own acquisition** — detach refuses to complete while the
//!    `BUSY` bit is set (and the RAII types make this unreachable anyway:
//!    a [`SessionGuard`] borrows its [`Session`]).
//! 2. **stale handle vs. recycled seat** — after [`SessionPlane::force_detach`]
//!    evicts a session (the operator's "client crashed in its noncritical
//!    section" action, paper assumptions 1.5–1.7), the seat can be re-leased.
//!    Every operation of the stale session compares the full seat word,
//!    *including the generation*: its `lock()` CAS fails loudly instead of
//!    acquiring a pid that now belongs to someone else, and its drop sees a
//!    foreign generation and walks away instead of freeing the new lease —
//!    the classic ABA that a plain leased-bit could not detect.
//!
//! The plane claims every [`Slot`] of the underlying lock at construction, so
//! sessions are the *only* path to the lock's pids — a plain `Slot` user
//! cannot collide with a leased session.
//!
//! Attach/detach totals are recorded in the underlying lock's [`LockStats`]
//! ([`LockStats::attaches`] / [`LockStats::detaches`]), so workload reports
//! can show churn next to critical-section counts.

use std::fmt;
use std::sync::Arc;

use crate::raw::RawMutexAlgorithm;
use crate::slots::Slot;
use crate::stats::LockStats;
use crate::sync::{AtomicU64, Ordering};
use crate::wait::{WaitHandle, WaitToken};

/// Seat-word bit: a session currently owns this pid.
const LEASED: u64 = 0b0001;
/// Seat-word bit: the owning session is between acquire and release.
const BUSY: u64 = 0b0010;
/// Seat-word bit: the owning session currently holds the critical section
/// (set after `acquire` returns, cleared before `release` starts) — the bit
/// that tells the reaper "this crash needs quarantine, not a register wipe".
const IN_CS: u64 = 0b0100;
/// Seat-word bit: the holder died inside the CS; the underlying lock is
/// still held on its pid until [`SessionPlane::recover_quarantined`].
const QUARANTINED: u64 = 0b1000;
/// Shift of the lease generation within the seat word.
const GEN_SHIFT: u32 = 4;

/// Lease duration meaning "never expires" (the default: planes built with
/// [`SessionPlane::new`] have no failure detector and `reap` is a no-op).
pub const LEASE_FOREVER: u64 = u64::MAX;

#[inline]
fn seat_word(gen: u64, flags: u64) -> u64 {
    (gen << GEN_SHIFT) | flags
}

#[inline]
fn seat_gen(word: u64) -> u64 {
    word >> GEN_SHIFT
}

/// Errors surfaced by [`SessionPlane::try_attach`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionError {
    /// Every pid slot of the underlying lock is currently leased.
    Exhausted {
        /// Slot capacity of the underlying lock.
        capacity: usize,
    },
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Exhausted { capacity } => {
                write!(f, "all {capacity} pid slots are leased to live sessions")
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// Lock-free pid-slot leasing over any [`RawMutexAlgorithm`].
///
/// ```
/// use std::sync::Arc;
/// use bakery_core::{BakeryPlusPlusLock, RawMutexAlgorithm};
/// use bakery_core::session::SessionPlane;
///
/// let lock: Arc<dyn RawMutexAlgorithm> = Arc::new(BakeryPlusPlusLock::with_bound(4, 255));
/// let plane = SessionPlane::new(lock);
/// let session = plane.attach();           // lease a pid
/// {
///     let _guard = session.lock();        // enter the critical section
/// }
/// drop(session);                          // pid recycled for the next client
/// assert_eq!(plane.stats().attaches(), 1);
/// assert_eq!(plane.stats().detaches(), 1);
/// ```
pub struct SessionPlane {
    lock: Arc<dyn RawMutexAlgorithm>,
    seats: Box<[AtomicU64]>,
    /// Absolute expiry tick of each seat's lease, renewed on attach and on
    /// every lock-path transition.  Only meaningful while the seat is leased.
    deadlines: Box<[AtomicU64]>,
    /// Logical failure-detector clock (caller-advanced; the plane never
    /// reads wall time so tests and experiments stay deterministic).
    clock: AtomicU64,
    /// Lease duration in clock ticks; [`LEASE_FOREVER`] disables expiry.
    lease_ticks: u64,
    /// Exclusive claim on every pid of the underlying lock: holding the
    /// `Slot`s makes the plane the only way to drive the lock.
    _slots: Vec<Slot>,
    /// The plane's wait plane: attach waiters park on its attach site and
    /// are woken by every detach/recycle.  Shares the underlying lock's
    /// [`crate::wait::WaitStrategy`] when the lock exposes one.
    waits: WaitHandle,
}

/// How many parked attach waiters one detach/recycle wakes.  One freed seat
/// can admit only one client, but waking a few tolerates woken clients that
/// lose the race (or cancelled async waiters whose stale registrations soak
/// up wakes) without thundering the whole herd on every detach.
const ATTACH_WAKE_BATCH: usize = 4;

/// What one [`SessionPlane::reap`] sweep did, seat by seat.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReapReport {
    /// Seats whose holder died in its NCS (leased, not busy): recycled.
    pub recycled_idle: usize,
    /// Seats whose holder died in the doorway or while waiting: recovered
    /// via [`RawMutexAlgorithm::crash_abort`] and recycled.
    pub crash_aborted: usize,
    /// Seats whose holder died inside the CS: moved to `QUARANTINED`
    /// (awaiting [`SessionPlane::recover_quarantined`]).
    pub quarantined: usize,
    /// Expired doorway seats the underlying algorithm refused to
    /// crash-abort (conservative [`RawMutexAlgorithm::crash_abort`]
    /// default): left untouched.
    pub refused: usize,
}

impl ReapReport {
    /// Total seats this sweep recovered or quarantined.
    #[must_use]
    pub fn total(&self) -> usize {
        self.recycled_idle + self.crash_aborted + self.quarantined
    }
}

impl fmt::Debug for SessionPlane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionPlane")
            .field("algorithm", &self.lock.algorithm_name())
            .field("capacity", &self.capacity())
            .field("live_sessions", &self.live_sessions())
            .finish()
    }
}

impl SessionPlane {
    /// Builds a session plane over `lock`, claiming every one of its slots.
    ///
    /// # Panics
    /// Panics if any slot of `lock` is already claimed — the plane must be
    /// the lock's sole driver for the leasing guarantees to hold.
    #[must_use]
    pub fn new(lock: Arc<dyn RawMutexAlgorithm>) -> Arc<Self> {
        Self::with_lease(lock, LEASE_FOREVER)
    }

    /// Builds a session plane whose leases expire `lease_ticks` logical
    /// clock ticks after their last renewal (attach, any lock-path
    /// transition, or [`Session::renew_lease`]).  Drive the clock with
    /// [`SessionPlane::advance_clock`] and sweep expired seats with
    /// [`SessionPlane::reap`].
    ///
    /// The lease is the failure-detector contract: a seat is presumed dead
    /// only once its deadline passes, so `lease_ticks` must exceed the
    /// longest attach-to-renewal gap of a *live* client — including its
    /// worst-case doorway wait and critical section.  [`LEASE_FOREVER`]
    /// disables expiry entirely.
    ///
    /// # Panics
    /// Panics if any slot of `lock` is already claimed — the plane must be
    /// the lock's sole driver for the leasing guarantees to hold.
    #[must_use]
    pub fn with_lease(lock: Arc<dyn RawMutexAlgorithm>, lease_ticks: u64) -> Arc<Self> {
        let capacity = lock.capacity();
        let slots: Vec<Slot> = (0..capacity)
            .map(|pid| {
                lock.register_exact(pid)
                    .expect("the session plane must own every slot of its lock")
            })
            .collect();
        // Share the lock's wait strategy (so attach waiters park under the
        // same discipline as its L2/L3 waiters) in a namespace of our own;
        // locks outside the wait machinery get the process-wide default.
        let waits = match lock.wait_handle() {
            Some(handle) => WaitHandle::new(Arc::clone(handle.strategy())),
            None => WaitHandle::default_handle(),
        };
        Arc::new(Self {
            lock,
            seats: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
            deadlines: (0..capacity).map(|_| AtomicU64::new(LEASE_FOREVER)).collect(),
            clock: AtomicU64::new(0),
            lease_ticks,
            _slots: slots,
            waits,
        })
    }

    /// The plane's wait plane (attach waiters and seat-state waits).
    #[must_use]
    pub fn wait_plane(&self) -> &WaitHandle {
        &self.waits
    }

    /// True when at least one seat is currently free — the attach-wait
    /// predicate (a false may be stale the instant it is read; only the
    /// attach CAS decides).
    #[must_use]
    pub fn has_free_seat(&self) -> bool {
        self.seats
            .iter()
            .any(|seat| seat.load(Ordering::SeqCst) & LEASED == 0) // mem: seat-word
    }

    /// Number of pid slots (the maximum number of concurrently live
    /// sessions).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.seats.len()
    }

    /// The underlying lock algorithm.
    #[must_use]
    pub fn algorithm(&self) -> &dyn RawMutexAlgorithm {
        &*self.lock
    }

    /// The underlying lock's statistics block (attach/detach totals included).
    #[must_use]
    pub fn stats(&self) -> &LockStats {
        self.lock.stats()
    }

    /// Number of currently leased seats.
    #[must_use]
    pub fn live_sessions(&self) -> usize {
        self.seats
            .iter()
            .filter(|seat| seat.load(Ordering::SeqCst) & LEASED != 0) // mem: seat-word
            .count()
    }

    /// The current logical failure-detector time.
    #[must_use]
    pub fn clock(&self) -> u64 {
        self.clock.load(Ordering::SeqCst) // mem: seat-word
    }

    /// Advances the logical clock to `now` (monotone: a lagging caller can
    /// never rewind it).  The plane itself never reads wall time — whoever
    /// runs the service loop owns the notion of "now", which is what keeps
    /// the E12 fault-injection schedules deterministic.
    pub fn advance_clock(&self, now: u64) {
        self.clock.fetch_max(now, Ordering::SeqCst); // mem: seat-word
    }

    /// The lease duration this plane was built with ([`LEASE_FOREVER`] when
    /// expiry is disabled).
    #[must_use]
    pub fn lease_ticks(&self) -> u64 {
        self.lease_ticks
    }

    /// Stamps seat `pid`'s deadline `lease_ticks` past the current clock.
    fn renew_deadline(&self, pid: usize) {
        let deadline = self.clock().saturating_add(self.lease_ticks);
        self.deadlines[pid].store(deadline, Ordering::SeqCst); // mem: seat-word
    }

    /// True when seat `pid`'s lease deadline has passed.
    fn lease_expired(&self, pid: usize) -> bool {
        self.clock() >= self.deadlines[pid].load(Ordering::SeqCst) // mem: seat-word
    }

    /// Leases a free pid, or reports exhaustion without blocking.
    pub fn try_attach(self: &Arc<Self>) -> Result<Session, SessionError> {
        for pid in 0..self.capacity() {
            let seat = &self.seats[pid];
            let word = seat.load(Ordering::SeqCst); // mem: seat-word
            if word & LEASED != 0 {
                continue;
            }
            let gen = seat_gen(word);
            // Stamp the deadline *before* publishing the lease: a reaper
            // must never observe a fresh lease against a stale deadline.
            // Losing the CAS below leaves a harmlessly-fresh stamp behind.
            self.renew_deadline(pid);
            if seat
                .compare_exchange(
                    seat_word(gen, 0),
                    seat_word(gen, LEASED),
                    Ordering::SeqCst, // mem: seat-word
                    Ordering::SeqCst, // mem: seat-word
                )
                .is_ok()
            {
                self.lock.stats().record_attach();
                return Ok(Session {
                    plane: Arc::clone(self),
                    pid,
                    gen,
                });
            }
        }
        Err(SessionError::Exhausted {
            capacity: self.capacity(),
        })
    }

    /// Leases a pid, waiting (through the plane's [`crate::wait::WaitStrategy`])
    /// until one frees up.
    ///
    /// This is the client-facing entry point of the E11 "lock service"
    /// regime: far more clients than seats, each waiting its turn to attach.
    /// Under a parking strategy a fully-leased plane costs the waiter a
    /// bounded number of rounds — every detach and seat recycle wakes parked
    /// attach waiters — instead of the unbounded 100%-CPU spin this method
    /// performed before the wait plane existed.
    #[must_use]
    pub fn attach(self: &Arc<Self>) -> Session {
        let site = self.waits.attach();
        let mut token = WaitToken::new();
        loop {
            match self.try_attach() {
                Ok(session) => return session,
                Err(SessionError::Exhausted { .. }) => {
                    self.waits
                        .wait(site, &mut token, &mut || !self.has_free_seat());
                }
            }
        }
    }

    /// Leases up to `max` pids in one seat sweep — the connection-storm
    /// batch path.  One pass over the seat words claims every free seat it
    /// can CAS (at most `max`); an empty vec means the plane was fully
    /// leased at every probed instant.  Never blocks.
    #[must_use]
    pub fn try_attach_batch(self: &Arc<Self>, max: usize) -> Vec<Session> {
        let mut sessions = Vec::new();
        if max == 0 {
            return sessions;
        }
        for pid in 0..self.capacity() {
            let seat = &self.seats[pid];
            let word = seat.load(Ordering::SeqCst); // mem: seat-word
            if word & LEASED != 0 {
                continue;
            }
            let gen = seat_gen(word);
            self.renew_deadline(pid);
            if seat
                .compare_exchange(
                    seat_word(gen, 0),
                    seat_word(gen, LEASED),
                    Ordering::SeqCst, // mem: seat-word
                    Ordering::SeqCst, // mem: seat-word
                )
                .is_ok()
            {
                self.lock.stats().record_attach();
                sessions.push(Session {
                    plane: Arc::clone(self),
                    pid,
                    gen,
                });
                if sessions.len() == max {
                    break;
                }
            }
        }
        sessions
    }

    /// Evicts the session on `pid`, if any.
    ///
    /// Models the operator action for a client that crashed in its
    /// noncritical section (paper assumptions 1.5–1.7).  A seat whose holder
    /// is **inside the critical section** is not recycled — that would hand
    /// the CS-holding pid to a new client while the CS is occupied — but
    /// moved to `QUARANTINED`, awaiting
    /// [`SessionPlane::recover_quarantined`].  A seat mid-doorway (`BUSY`
    /// without `IN_CS`) is spun out: the acquisition completes into the CS
    /// (and quarantines) or retreats (and detaches) promptly.
    ///
    /// Returns `true` when the lease was ended (detached *or* quarantined).
    pub fn force_detach(&self, pid: usize) -> bool {
        let seat = &self.seats[pid];
        let site = self.waits.guard();
        let mut token = WaitToken::new();
        loop {
            let word = seat.load(Ordering::SeqCst); // mem: seat-word
            if word & LEASED == 0 {
                return false;
            }
            if word & QUARANTINED != 0 {
                return false; // already evicted; recovery is pending
            }
            if word & IN_CS != 0 {
                // The holder occupies the CS: quarantine instead of
                // recycling (the latent aliasing hole this path used to
                // have).  The CAS transfers release-ownership to the
                // recovery guard; a concurrently-releasing live holder that
                // loses it walks away without touching the lock.
                if self.quarantine_seat(pid, word) {
                    return true;
                }
                continue; // raced with the holder's exit; re-read
            }
            if word & BUSY != 0 {
                // Mid-doorway: wait for the acquisition to land or retreat
                // (enter_cs and clear_busy both notify the guard site).
                self.waits.wait(site, &mut token, &mut || {
                    let w = seat.load(Ordering::SeqCst); // mem: seat-word
                    w & BUSY != 0 && w & IN_CS == 0
                });
                continue;
            }
            if self.detach_seat(pid, seat_gen(word)) {
                return true;
            }
        }
    }

    /// CAS `IN_CS(gen) → QUARANTINED(gen)` — the edge that transfers
    /// ownership of the pending `release` from the (presumed dead) holder to
    /// the future [`RecoveredSeat`] guard.
    fn quarantine_seat(&self, pid: usize, word: u64) -> bool {
        debug_assert!(word & IN_CS != 0);
        self.seats[pid]
            .compare_exchange(
                word,
                seat_word(seat_gen(word), LEASED | QUARANTINED),
                Ordering::SeqCst, // mem: seat-word
                Ordering::SeqCst, // mem: seat-word
            )
            .is_ok()
    }

    /// Sweeps every seat whose lease deadline has passed, applying the
    /// paper's crash rule to each presumed-dead holder:
    ///
    /// * **idle** (leased, not busy) — the holder died in its NCS; its
    ///   registers are already zero, so the seat is simply recycled;
    /// * **doorway / waiting** (`BUSY`, not `IN_CS`) — recovered via
    ///   [`RawMutexAlgorithm::crash_abort`] (registers and packed mirror
    ///   zeroed) and recycled; if the algorithm's conservative default
    ///   refuses, the seat is left untouched and counted as `refused`;
    /// * **inside the CS** (`IN_CS`) — moved to `QUARANTINED`: mutual
    ///   exclusion is never silently broken, the lock stays held on that pid
    ///   until [`SessionPlane::recover_quarantined`].
    ///
    /// Every recovered seat is counted in [`LockStats::seat_recoveries`];
    /// the sweep is driven entirely by the caller-advanced logical clock, so
    /// a reaper thread calling `reap` at a fixed cadence is deterministic
    /// under the E12 fault schedules.
    ///
    /// The failure-detector contract is the lease itself: a live client that
    /// lets its deadline lapse (e.g. a doorway wait longer than
    /// `lease_ticks`) is indistinguishable from a dead one and will be
    /// reaped — its next seat transition then fails loudly (stale-session
    /// panic) instead of aliasing the recycled pid.
    pub fn reap(&self) -> ReapReport {
        let mut report = ReapReport::default();
        for pid in 0..self.capacity() {
            let seat = &self.seats[pid];
            let word = seat.load(Ordering::SeqCst); // mem: seat-word
            if word & LEASED == 0 || word & QUARANTINED != 0 {
                continue;
            }
            if !self.lease_expired(pid) {
                continue;
            }
            if word & IN_CS != 0 {
                if self.quarantine_seat(pid, word) {
                    report.quarantined += 1;
                }
                continue;
            }
            if word & BUSY != 0 {
                // Crashed in the doorway or while waiting: wipe the pid's
                // registers first — the seat must never re-lease while they
                // are dirty — then recycle.
                if !self.lock.crash_abort(pid) {
                    report.refused += 1;
                    continue;
                }
                if seat
                    .compare_exchange(
                        word,
                        seat_word(seat_gen(word).wrapping_add(1), 0),
                        Ordering::SeqCst, // mem: seat-word
                        Ordering::SeqCst, // mem: seat-word
                    )
                    .is_ok()
                {
                    self.lock.stats().record_detach();
                    self.lock.stats().record_seat_recovery();
                    self.waits.notify_some(self.waits.attach(), ATTACH_WAKE_BATCH);
                    report.crash_aborted += 1;
                }
                continue;
            }
            // Idle seat: the holder died in its NCS with clean registers.
            if self.detach_seat(pid, seat_gen(word)) {
                self.lock.stats().record_seat_recovery();
                report.recycled_idle += 1;
            }
        }
        report
    }

    /// Takes over a `QUARANTINED` seat: the returned [`RecoveredSeat`] guard
    /// *owns the critical section* the dead holder left occupied — the
    /// operator inspects or repairs shared state under its protection, and
    /// dropping it performs the one release on the dead pid's behalf and
    /// recycles the seat (generation bumped).  Mirrors
    /// `std::sync::Mutex` poisoning: the CS is handed back explicitly, never
    /// silently.
    ///
    /// Returns `None` when seat `pid` is not quarantined, or when another
    /// recoverer won the takeover CAS.
    pub fn recover_quarantined(&self, pid: usize) -> Option<RecoveredSeat<'_>> {
        let seat = &self.seats[pid];
        let word = seat.load(Ordering::SeqCst); // mem: seat-word
        if word & QUARANTINED == 0 {
            return None;
        }
        let gen = seat_gen(word);
        // Re-stamp the deadline before taking over, so a concurrent reaper
        // treats the recovery like any other live holder's lease.
        self.renew_deadline(pid);
        if seat
            .compare_exchange(
                word,
                seat_word(gen, LEASED | BUSY | IN_CS),
                Ordering::SeqCst, // mem: seat-word
                Ordering::SeqCst, // mem: seat-word
            )
            .is_ok()
        {
            Some(RecoveredSeat {
                plane: self,
                pid,
                gen,
            })
        } else {
            None
        }
    }

    /// Pids currently in the `QUARANTINED` state (awaiting recovery).
    #[must_use]
    pub fn quarantined_seats(&self) -> Vec<usize> {
        (0..self.capacity())
            .filter(|&pid| self.seats[pid].load(Ordering::SeqCst) & QUARANTINED != 0) // mem: seat-word
            .collect()
    }

    /// CAS `leased(gen) → free(gen + 1)`.  Fails (returns `false`) when the
    /// seat is busy, already free, or on a different generation — i.e. when
    /// the caller's view of the lease is stale.
    fn detach_seat(&self, pid: usize, gen: u64) -> bool {
        let freed = self.seats[pid]
            .compare_exchange(
                seat_word(gen, LEASED),
                seat_word(gen.wrapping_add(1), 0),
                Ordering::SeqCst, // mem: seat-word
                Ordering::SeqCst, // mem: seat-word
            )
            .is_ok();
        if freed {
            self.lock.stats().record_detach();
            // A seat just freed: wake a bounded batch of attach waiters.
            self.waits.notify_some(self.waits.attach(), ATTACH_WAKE_BATCH);
        }
        freed
    }
}

/// A leased pid on a [`SessionPlane`]; detaches (recycling the pid) on drop.
///
/// The session is the unit of dynamic membership: `attach → lock/unlock… →
/// detach` is one client's lifetime, and the underlying fixed-`N` lock only
/// ever sees its stable pid set.
pub struct Session {
    plane: Arc<SessionPlane>,
    pid: usize,
    gen: u64,
}

impl Session {
    /// The leased pid (the process id this client plays).
    #[must_use]
    pub fn pid(&self) -> usize {
        self.pid
    }

    /// The lease generation of this session's seat.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// The plane this session is attached to.
    #[must_use]
    pub fn plane(&self) -> &Arc<SessionPlane> {
        &self.plane
    }

    /// Re-stamps this session's lease deadline `lease_ticks` past the
    /// plane's current clock — the explicit heartbeat for a client that is
    /// alive but between lock operations.
    pub fn renew_lease(&self) {
        self.plane.renew_deadline(self.pid);
    }

    /// Marks the seat `BUSY` for the duration of an acquisition.
    ///
    /// # Panics
    /// Panics if the session was evicted by [`SessionPlane::force_detach`]
    /// or reaped after its lease expired, and its seat possibly re-leased —
    /// the seat-word mismatch is detected here, which is exactly the
    /// aliasing the generation tag exists to prevent.
    fn mark_busy(&self) {
        self.plane.renew_deadline(self.pid);
        let leased = seat_word(self.gen, LEASED);
        self.plane.seats[self.pid]
            .compare_exchange(
                leased,
                leased | BUSY,
                Ordering::SeqCst, // mem: seat-word
                Ordering::SeqCst, // mem: seat-word
            )
            .unwrap_or_else(|actual| {
                panic!(
                    "stale session: pid {} generation {} was force-detached \
                     (seat word is now {actual:#x})",
                    self.pid, self.gen
                )
            });
    }

    /// CAS `BUSY(gen) → IN_CS(gen)` after `acquire` returns: from here on a
    /// crash is a crash-*inside-CS* and must quarantine, not register-wipe.
    ///
    /// # Panics
    /// Panics if the seat was reaped mid-acquisition (a lease-contract
    /// violation: the doorway wait outlived `lease_ticks`).
    fn enter_cs(&self) {
        self.plane.renew_deadline(self.pid);
        let busy = seat_word(self.gen, LEASED | BUSY);
        self.plane.seats[self.pid]
            .compare_exchange(
                busy,
                busy | IN_CS,
                Ordering::SeqCst, // mem: seat-word
                Ordering::SeqCst, // mem: seat-word
            )
            .unwrap_or_else(|actual| {
                panic!(
                    "session pid {} generation {} was reaped mid-acquisition \
                     (seat word is now {actual:#x}); lease_ticks must exceed \
                     the worst-case doorway wait",
                    self.pid, self.gen
                )
            });
        // The seat left the BUSY-without-IN_CS window force_detach waits on.
        self.plane.waits.notify(self.plane.waits.guard());
    }

    /// CAS the `BUSY` bit away after a completed (or abandoned) lock
    /// operation.  Failure is tolerated: it means a reaper already ended
    /// this lease, and the next operation will fail loudly in `mark_busy`.
    fn clear_busy(&self) {
        let _ = self.plane.seats[self.pid].compare_exchange(
            seat_word(self.gen, LEASED | BUSY),
            seat_word(self.gen, LEASED),
            Ordering::SeqCst, // mem: seat-word
            Ordering::SeqCst, // mem: seat-word
        );
        // Win or lose, the BUSY window is over: wake force_detach waiters.
        self.plane.waits.notify(self.plane.waits.guard());
    }

    /// Enters the critical section, blocking until granted.
    ///
    /// # Panics
    /// Panics if the session is stale (see [`SessionPlane::force_detach`]).
    #[must_use]
    pub fn lock(&self) -> SessionGuard<'_> {
        self.mark_busy();
        self.plane.lock.acquire(self.pid);
        self.enter_cs();
        self.plane.lock.stats().record_cs_entry();
        SessionGuard { session: self }
    }

    /// One non-blocking attempt to enter the critical section (may fail
    /// spuriously, like [`RawMutexAlgorithm::try_acquire`]).
    ///
    /// # Panics
    /// Panics if the session is stale (see [`SessionPlane::force_detach`]).
    #[must_use]
    pub fn try_lock(&self) -> Option<SessionGuard<'_>> {
        self.mark_busy();
        if self.plane.lock.try_acquire(self.pid) {
            self.enter_cs();
            self.plane.lock.stats().record_cs_entry();
            Some(SessionGuard { session: self })
        } else {
            self.clear_busy();
            None
        }
    }
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("pid", &self.pid)
            .field("generation", &self.gen)
            .field("algorithm", &self.plane.lock.algorithm_name())
            .finish()
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        // A stale session (evicted seat, possibly re-leased at a higher
        // generation) must walk away without freeing the *new* lease: the
        // generation comparison inside detach_seat makes its CAS fail.
        let _ = self.plane.detach_seat(self.pid, self.gen);
    }
}

/// A critical section held through a [`Session`]; releases on drop.
pub struct SessionGuard<'a> {
    session: &'a Session,
}

impl SessionGuard<'_> {
    /// The pid holding the critical section.
    #[must_use]
    pub fn pid(&self) -> usize {
        self.session.pid
    }
}

impl fmt::Debug for SessionGuard<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionGuard")
            .field("pid", &self.session.pid)
            .finish()
    }
}

impl Drop for SessionGuard<'_> {
    fn drop(&mut self) {
        let session = self.session;
        // Leave the CS in two CAS steps.  Step 1 (`IN_CS → BUSY`) races the
        // reaper's quarantine CAS on the same word: exactly one wins.  Losing
        // means the seat is QUARANTINED and ownership of the release has
        // transferred to the future `RecoveredSeat` guard — walk away WITHOUT
        // touching the lock, or the recovery path would double-release.
        let in_cs = seat_word(session.gen, LEASED | BUSY | IN_CS);
        if session.plane.seats[session.pid]
            .compare_exchange(
                in_cs,
                seat_word(session.gen, LEASED | BUSY),
                Ordering::SeqCst, // mem: seat-word
                Ordering::SeqCst, // mem: seat-word
            )
            .is_err()
        {
            return;
        }
        session.plane.lock.release(session.pid);
        session.clear_busy();
    }
}

/// Ownership of the critical section a dead (or evicted) holder left
/// occupied, obtained from [`SessionPlane::recover_quarantined`].
///
/// While the guard lives, the underlying lock is still held on the dead
/// pid — the recovering operator inspects or repairs shared state under the
/// same mutual exclusion the crashed client had.  Dropping the guard
/// performs the release on the dead holder's behalf and recycles the seat at
/// a bumped generation.
pub struct RecoveredSeat<'a> {
    plane: &'a SessionPlane,
    pid: usize,
    gen: u64,
}

impl RecoveredSeat<'_> {
    /// The pid whose critical section this guard holds.
    #[must_use]
    pub fn pid(&self) -> usize {
        self.pid
    }
}

impl fmt::Debug for RecoveredSeat<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RecoveredSeat")
            .field("pid", &self.pid)
            .field("generation", &self.gen)
            .finish()
    }
}

impl Drop for RecoveredSeat<'_> {
    fn drop(&mut self) {
        // The one release the dead holder never performed.
        self.plane.lock.release(self.pid);
        // Free the seat at a bumped generation; the takeover CAS in
        // `recover_quarantined` made this guard the word's sole owner.
        self.plane.seats[self.pid].store(
            seat_word(self.gen.wrapping_add(1), 0),
            Ordering::SeqCst, // mem: seat-word
        );
        self.plane.lock.stats().record_detach();
        self.plane.lock.stats().record_seat_recovery();
        self.plane
            .waits
            .notify_some(self.plane.waits.attach(), ATTACH_WAKE_BATCH);
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::bakery_pp::BakeryPlusPlusLock;
    use crate::tree::TreeBakery;
    use proptest::prelude::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};
    use std::sync::Mutex;

    fn plane_over_pp(n: usize) -> Arc<SessionPlane> {
        SessionPlane::new(Arc::new(BakeryPlusPlusLock::with_bound(n, 255)))
    }

    #[test]
    fn attach_lock_detach_roundtrip() {
        let plane = plane_over_pp(2);
        let s = plane.attach();
        assert_eq!(s.pid(), 0);
        assert_eq!(s.generation(), 0);
        {
            let g = s.lock();
            assert_eq!(g.pid(), 0);
        }
        drop(s);
        assert_eq!(plane.live_sessions(), 0);
        assert_eq!(plane.stats().attaches(), 1);
        assert_eq!(plane.stats().detaches(), 1);
        assert_eq!(plane.stats().cs_entries(), 1);
        // The pid was recycled with a bumped generation.
        let s = plane.attach();
        assert_eq!(s.pid(), 0);
        assert_eq!(s.generation(), 1);
    }

    #[test]
    fn exhaustion_is_reported_and_clears() {
        let plane = plane_over_pp(2);
        let a = plane.attach();
        let b = plane.attach();
        assert_eq!((a.pid(), b.pid()), (0, 1));
        assert_eq!(
            plane.try_attach().unwrap_err(),
            SessionError::Exhausted { capacity: 2 }
        );
        assert!(plane
            .try_attach()
            .unwrap_err()
            .to_string()
            .contains("leased"));
        drop(a);
        assert_eq!(plane.try_attach().unwrap().pid(), 0);
    }

    #[test]
    fn plane_owns_every_slot_of_the_lock() {
        let lock = Arc::new(BakeryPlusPlusLock::with_bound(3, 255));
        let plane = SessionPlane::new(Arc::clone(&lock) as Arc<dyn RawMutexAlgorithm>);
        // No raw Slot can collide with a session.
        assert!(lock.register().is_err());
        let _s = plane.attach();
    }

    #[test]
    #[should_panic(expected = "must own every slot")]
    fn plane_rejects_a_lock_with_claimed_slots() {
        let lock = Arc::new(BakeryPlusPlusLock::with_bound(2, 255));
        let _claimed = lock.register().unwrap();
        let _ = SessionPlane::new(lock);
    }

    #[test]
    fn try_lock_through_a_session() {
        let plane = plane_over_pp(2);
        let s = plane.attach();
        {
            let g = s.try_lock().expect("uncontended try_lock");
            assert_eq!(g.pid(), 0);
        }
        assert_eq!(plane.stats().cs_entries(), 1);
    }

    #[test]
    fn force_detach_recycles_and_stale_session_is_refused() {
        let plane = plane_over_pp(2);
        let stale = plane.attach();
        assert!(plane.force_detach(stale.pid()));
        assert_eq!(plane.live_sessions(), 0);
        // The seat re-leases at a higher generation…
        let fresh = plane.attach();
        assert_eq!(fresh.pid(), stale.pid());
        assert_eq!(fresh.generation(), stale.generation() + 1);
        // …and the stale handle can no longer acquire through it.
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = stale.lock();
        }));
        assert!(err.is_err(), "stale session must panic, not alias");
        // Dropping the stale handle must not free the fresh lease.
        drop(stale);
        assert_eq!(plane.live_sessions(), 1);
        assert!(fresh.try_lock().is_some());
        assert_eq!(plane.stats().attaches(), 2);
        assert_eq!(plane.stats().detaches(), 1, "the stale drop detached nothing");
    }

    #[test]
    fn force_detach_on_a_free_seat_is_a_noop() {
        let plane = plane_over_pp(2);
        assert!(!plane.force_detach(1));
        assert_eq!(plane.stats().detaches(), 0);
    }

    #[test]
    fn churn_over_a_tree_lock_recycles_without_aliasing() {
        // 4 worker threads churn 64 clients each over a 4-slot tree lock:
        // every live (pid) must be unique at all times.
        let plane = SessionPlane::new(Arc::new(TreeBakery::with_arity(4, 2)));
        let live: Mutex<HashSet<usize>> = Mutex::new(HashSet::new());
        let in_cs = StdAtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..64 {
                        let session = plane.attach();
                        assert!(
                            live.lock().unwrap().insert(session.pid()),
                            "two live sessions on pid {}",
                            session.pid()
                        );
                        for _ in 0..3 {
                            let _g = session.lock();
                            assert_eq!(in_cs.fetch_add(1, StdOrdering::SeqCst), 0);
                            in_cs.fetch_sub(1, StdOrdering::SeqCst);
                        }
                        assert!(live.lock().unwrap().remove(&session.pid()));
                        drop(session);
                    }
                });
            }
        });
        assert_eq!(plane.stats().attaches(), 256);
        assert_eq!(plane.stats().detaches(), 256);
        assert_eq!(plane.stats().cs_entries(), 768);
        assert_eq!(plane.live_sessions(), 0);
    }

    #[test]
    fn reap_is_a_noop_without_expiry_or_before_the_deadline() {
        let plane = plane_over_pp(2);
        let _s = plane.attach();
        plane.advance_clock(u64::MAX - 1);
        assert_eq!(plane.reap(), ReapReport::default(), "LEASE_FOREVER never expires");

        let plane = SessionPlane::with_lease(
            Arc::new(BakeryPlusPlusLock::with_bound(2, 255)),
            10,
        );
        let _s = plane.attach();
        plane.advance_clock(9);
        assert_eq!(plane.reap(), ReapReport::default(), "deadline not reached");
        assert_eq!(plane.live_sessions(), 1);
    }

    #[test]
    fn reap_recycles_an_idle_crashed_seat() {
        let plane = SessionPlane::with_lease(
            Arc::new(BakeryPlusPlusLock::with_bound(2, 255)),
            10,
        );
        let dead = plane.attach();
        std::mem::forget(dead); // the client vanishes without detaching
        plane.advance_clock(10);
        let report = plane.reap();
        assert_eq!(report.recycled_idle, 1);
        assert_eq!(report.total(), 1);
        assert_eq!(plane.live_sessions(), 0);
        assert_eq!(plane.stats().seat_recoveries(), 1);
        // The seat re-leases at a bumped generation.
        let fresh = plane.attach();
        assert_eq!(fresh.pid(), 0);
        assert_eq!(fresh.generation(), 1);
        assert!(fresh.try_lock().is_some());
    }

    #[test]
    fn reap_crash_aborts_a_doorway_crashed_seat() {
        let lock = Arc::new(BakeryPlusPlusLock::with_bound(2, 255));
        let plane = SessionPlane::with_lease(
            Arc::clone(&lock) as Arc<dyn RawMutexAlgorithm>,
            10,
        );
        let dead = plane.attach();
        let pid = dead.pid();
        // Simulate a doorway crash: the seat goes BUSY and the pid's number
        // register is written, but the client dies before entering the CS.
        dead.mark_busy();
        lock.registers().write_number(pid, 3, plane.stats());
        std::mem::forget(dead);
        plane.advance_clock(10);
        let report = plane.reap();
        assert_eq!(report.crash_aborted, 1);
        assert_eq!(plane.stats().crash_aborts(), 1);
        assert_eq!(plane.stats().seat_recoveries(), 1);
        // The paper's crash rule held: registers read zero again…
        assert_eq!(lock.registers().read_number(pid), 0);
        assert!(!lock.registers().read_choosing(pid));
        // …and the seat re-leases cleanly.
        let fresh = plane.attach();
        assert_eq!(fresh.pid(), pid);
        assert!(fresh.try_lock().is_some());
    }

    #[test]
    fn reap_quarantines_a_cs_crashed_seat_and_recovery_hands_the_cs_back() {
        let plane = SessionPlane::with_lease(
            Arc::new(BakeryPlusPlusLock::with_bound(2, 255)),
            10,
        );
        let dead = plane.attach();
        let survivor = plane.attach();
        let pid = dead.pid();
        let guard = dead.lock();
        std::mem::forget(guard); // the client dies INSIDE the CS
        std::mem::forget(dead);
        plane.advance_clock(10);
        survivor.renew_lease(); // the survivor heartbeats; only `dead` expires
        let report = plane.reap();
        assert_eq!(report.quarantined, 1);
        assert_eq!(plane.quarantined_seats(), vec![pid]);
        // Mutual exclusion is not silently broken: the seat is not leasable
        // and the lock is still held on the dead pid.
        assert!(matches!(
            plane.try_attach(),
            Err(SessionError::Exhausted { .. })
        ));
        survivor.renew_lease();
        assert!(survivor.try_lock().is_none(), "the dead pid still holds the CS");
        // A second sweep leaves the quarantined seat alone.
        plane.advance_clock(20);
        survivor.renew_lease();
        assert_eq!(plane.reap().total(), 0);
        // Explicit recovery hands the CS back…
        let recovered = plane.recover_quarantined(pid).expect("quarantined");
        assert_eq!(recovered.pid(), pid);
        assert!(plane.recover_quarantined(pid).is_none(), "takeover is exclusive");
        // …and dropping the guard releases on the dead holder's behalf.
        drop(recovered);
        assert_eq!(plane.quarantined_seats(), Vec::<usize>::new());
        assert_eq!(plane.stats().seat_recoveries(), 1);
        survivor.renew_lease();
        assert!(survivor.try_lock().is_some(), "the CS flows again");
        let fresh = plane.attach();
        assert_eq!(fresh.pid(), pid);
        assert_eq!(fresh.generation(), 1);
    }

    #[test]
    fn force_detach_quarantines_instead_of_recycling_a_held_cs() {
        // Regression for the latent aliasing hole: force_detach used to spin
        // the BUSY bit out and recycle the seat even while the holder sat
        // inside the CS, handing the CS-holding pid to a new client.
        let plane = plane_over_pp(2);
        let holder = plane.attach();
        let pid = holder.pid();
        let guard = holder.lock();
        assert!(plane.force_detach(pid), "the lease is ended by quarantine");
        assert_eq!(plane.quarantined_seats(), vec![pid]);
        // The seat must NOT be re-leasable while the CS is occupied.
        let other = plane.attach();
        assert_ne!(other.pid(), pid, "quarantined seat must not re-lease");
        assert!(matches!(
            plane.try_attach(),
            Err(SessionError::Exhausted { .. })
        ));
        // The evicted (live) holder loses the exit race by design: its guard
        // drop walks away, release-ownership belongs to the recovery guard.
        drop(guard);
        drop(holder);
        assert!(other.try_lock().is_none(), "CS still held until recovery");
        drop(plane.recover_quarantined(pid).expect("quarantined"));
        assert!(other.try_lock().is_some());
        assert_eq!(plane.stats().seat_recoveries(), 1);
    }

    #[test]
    fn recovered_seat_guard_excludes_other_sessions_until_dropped() {
        let plane = SessionPlane::with_lease(
            Arc::new(BakeryPlusPlusLock::with_bound(2, 255)),
            5,
        );
        let dead = plane.attach();
        std::mem::forget(dead.lock());
        std::mem::forget(dead);
        plane.advance_clock(5);
        assert_eq!(plane.reap().quarantined, 1);
        let other = plane.attach();
        let recovered = plane.recover_quarantined(0).expect("quarantined");
        other.renew_lease();
        assert!(
            other.try_lock().is_none(),
            "the recovery guard owns the CS while it repairs state"
        );
        drop(recovered);
        other.renew_lease();
        assert!(other.try_lock().is_some());
    }

    /// Regression for the 100%-CPU attach spin (PR 7 satellite): a blocking
    /// `attach` against a fully leased plane must park instead of burning
    /// rounds until a seat frees.  With the `Park` strategy, ~50ms of
    /// oversubscription must produce at least one real park and a *bounded*
    /// number of wait rounds — pure spinning would run millions.
    #[test]
    fn blocked_attach_parks_instead_of_spinning() {
        use crate::wait::Park;
        let park = Arc::new(Park::new());
        let lock = BakeryPlusPlusLock::with_bound_mode_and_strategy(
            1,
            255,
            crate::snapshot::ScanMode::Packed,
            park.clone(),
        );
        let plane = SessionPlane::new(Arc::new(lock));
        let holder = plane.attach();
        let waiter = {
            let plane = Arc::clone(&plane);
            std::thread::spawn(move || plane.attach())
        };
        // Give the waiter time to exhaust its spin phase and park.
        std::thread::sleep(std::time::Duration::from_millis(50));
        drop(holder); // detach notifies the attach site
        let session = waiter.join().unwrap();
        assert_eq!(session.pid(), 0);
        assert!(park.parks() >= 1, "the blocked attach never parked");
        // Each wait round is a park (~1ms timeout) once the spin phase ends,
        // so 50ms of waiting is a few dozen rounds — not the ~10^6 of a
        // busy-spin.  A loose ceiling keeps the check robust on slow CI.
        assert!(
            park.wait_calls() < 10_000,
            "attach burned {} wait rounds — it is spinning, not parking",
            park.wait_calls()
        );
    }

    proptest! {
        /// Under random attach/try-attach/detach churn across real threads,
        /// no two live sessions ever hold the same slot, and attach/detach
        /// totals balance to the live count at every quiescent point.
        #[test]
        fn no_two_live_sessions_share_a_slot(
            capacity in 1usize..6,
            threads in 2usize..5,
            churns in 4u64..24,
            seed in 0u64..u64::MAX,
        ) {
            let plane = plane_over_pp(capacity);
            let live: Mutex<HashSet<usize>> = Mutex::new(HashSet::new());
            let violations = StdAtomicU64::new(0);
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let plane = &plane;
                    let live = &live;
                    let violations = &violations;
                    scope.spawn(move || {
                        let mut state = seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                        for _ in 0..churns {
                            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                            // Mix blocking and non-blocking attaches.
                            let session = if state & 4 == 0 {
                                match plane.try_attach() {
                                    Ok(s) => s,
                                    Err(SessionError::Exhausted { .. }) => continue,
                                }
                            } else {
                                plane.attach()
                            };
                            if !live.lock().unwrap().insert(session.pid()) {
                                violations.fetch_add(1, StdOrdering::SeqCst);
                            }
                            if state & 2 == 0 {
                                let _g = session.lock();
                            }
                            if !live.lock().unwrap().remove(&session.pid()) {
                                violations.fetch_add(1, StdOrdering::SeqCst);
                            }
                            drop(session);
                        }
                    });
                }
            });
            prop_assert_eq!(violations.load(StdOrdering::SeqCst), 0,
                "a pid was leased to two live sessions");
            prop_assert_eq!(plane.live_sessions(), 0);
            let stats = plane.stats();
            prop_assert_eq!(stats.attaches(), stats.detaches());
        }
    }
}
