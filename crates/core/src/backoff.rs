//! Spin/yield backoff used by the busy-wait loops of every lock in the suite.
//!
//! The Bakery family of algorithms is built entirely from busy-waiting on
//! single-writer registers (the `L1`, `L2` and `L3` loops of the paper's
//! Algorithms 1 and 2).  A naive `loop {}` around an atomic load saturates the
//! memory subsystem and starves the writer whose store the reader is waiting
//! for, so all waits in this crate go through [`Backoff`]: a short phase of
//! `spin_loop` hints with exponentially increasing repetition, followed by OS
//! `yield_now` calls once the spin budget is exhausted.
//!
//! Since PR 7 the locks reach this type through the pluggable
//! [`crate::wait::WaitStrategy`] plane ([`crate::wait::Spin`] wraps it as the
//! baseline discipline); the cross-algorithm policy contract — including the
//! "identical across algorithms so E7 measures protocols, not waiting"
//! caveat — lives in the [`crate::wait`] module docs.

use crate::sync;

/// Exponential spin-then-yield backoff.
///
/// ```
/// use bakery_core::backoff::Backoff;
///
/// let mut waited = 0u32;
/// let mut backoff = Backoff::new();
/// while waited < 32 {
///     waited += 1;
///     backoff.snooze();
/// }
/// assert!(backoff.rounds() >= 32);
/// ```
#[derive(Debug)]
pub struct Backoff {
    /// Exponent of the current spin batch (capped at [`Backoff::SPIN_LIMIT`]).
    step: u32,
    /// Total number of `snooze` calls since creation or the last `reset`.
    rounds: u64,
}

impl Backoff {
    /// Number of doubling steps spent purely spinning before yielding.
    pub const SPIN_LIMIT: u32 = 6;
    /// Hard cap on the exponent so the spin batch length stays bounded.
    pub const YIELD_LIMIT: u32 = 10;

    /// Creates a fresh backoff in the "not yet waited" state.
    #[must_use]
    pub fn new() -> Self {
        Self { step: 0, rounds: 0 }
    }

    /// Number of times [`Backoff::snooze`] has been called.
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// True once the backoff has escalated past pure spinning.
    #[must_use]
    pub fn is_yielding(&self) -> bool {
        self.step > Self::SPIN_LIMIT
    }

    /// Waits a little, escalating from spin hints to OS yields.
    pub fn snooze(&mut self) {
        self.rounds += 1;
        if self.step <= Self::SPIN_LIMIT {
            for _ in 0..(1u32 << self.step) {
                sync::spin_hint();
            }
        } else {
            sync::yield_now();
        }
        if self.step < Self::YIELD_LIMIT {
            self.step += 1;
        }
    }

    /// Resets the escalation state (used when a wait condition makes
    /// progress).  The round count restarts too, as the documentation of
    /// [`Backoff::rounds`] promises: a reset begins a new wait episode, so a
    /// caller metering one episode through `rounds()` must not inherit the
    /// previous episode's count.
    pub fn reset(&mut self) {
        self.step = 0;
        self.rounds = 0;
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn starts_spinning() {
        let b = Backoff::new();
        assert_eq!(b.rounds(), 0);
        assert!(!b.is_yielding());
    }

    #[test]
    fn escalates_to_yielding() {
        let mut b = Backoff::new();
        for _ in 0..=(Backoff::SPIN_LIMIT + 1) {
            b.snooze();
        }
        assert!(b.is_yielding());
        assert_eq!(b.rounds(), u64::from(Backoff::SPIN_LIMIT) + 2);
    }

    #[test]
    fn reset_returns_to_spinning() {
        let mut b = Backoff::new();
        for _ in 0..20 {
            b.snooze();
        }
        assert!(b.is_yielding());
        b.reset();
        assert!(!b.is_yielding());
        // A reset starts a new wait episode: the round count restarts with
        // the escalation state ("since creation or the last `reset`").
        assert_eq!(b.rounds(), 0);
        b.snooze();
        assert_eq!(b.rounds(), 1);
    }

    #[test]
    fn step_saturates_at_yield_limit() {
        let mut b = Backoff::new();
        for _ in 0..1000 {
            b.snooze();
        }
        assert!(b.is_yielding());
        assert_eq!(b.rounds(), 1000);
    }

    #[test]
    fn default_equals_new() {
        let a = Backoff::default();
        let b = Backoff::new();
        assert_eq!(a.rounds(), b.rounds());
        assert_eq!(a.is_yielding(), b.is_yielding());
    }
}
