//! Offline stand-in for the parts of `rand` 0.8.5 this workspace uses.
//!
//! Provides a deterministic [`rngs::StdRng`] (splitmix64 core) with
//! [`SeedableRng::seed_from_u64`] and the [`Rng`] methods `gen_range`,
//! `gen_bool` and `gen_ratio`.  The statistical quality is far below the
//! upstream ChaCha-based `StdRng` but is more than sufficient for the seeded
//! schedulers and fault injectors in `bakery-sim`, which only need
//! reproducible, well-spread choices.

#![forbid(unsafe_code)]

use core::ops::Range;

/// A random number generator seedable from integers.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (same seed, same stream).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types [`Rng::gen_range`] can sample uniformly.
pub trait UniformInt: Copy + PartialOrd {
    /// Converts to the u64 sampling domain.
    fn to_u64(self) -> u64;
    /// Converts back from the u64 sampling domain.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($ty:ty),*) => {
        $(impl UniformInt for $ty {
            fn to_u64(self) -> u64 { self as u64 }
            fn from_u64(v: u64) -> Self { v as $ty }
        })*
    };
}
impl_uniform_int!(u8, u16, u32, u64, usize);

/// The user-facing random-value interface.
pub trait Rng {
    /// Returns the next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from `range` (half-open, must be non-empty).
    fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        let start = range.start.to_u64();
        let end = range.end.to_u64();
        assert!(start < end, "cannot sample from empty range");
        let span = end - start;
        // Multiply-shift rejection-free mapping; bias is negligible for the
        // small spans the simulator uses.
        let v = (u128::from(self.next_u64()) * u128::from(span)) >> 64;
        T::from_u64(start + v as u64)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`, matching upstream `rand`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "p={p} is outside range [0.0, 1.0]"
        );
        // 53 high bits give a uniform double in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    ///
    /// # Panics
    /// Panics if `denominator == 0` or `numerator > denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "gen_ratio denominator must be non-zero");
        assert!(
            numerator <= denominator,
            "gen_ratio numerator must not exceed denominator"
        );
        self.gen_range(0u32..denominator) < numerator
    }
}

/// Concrete generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic splitmix64 generator.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self {
                // Avoid the all-zero fixed point without perturbing distinct
                // seeds into collisions.
                state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Vigna), the canonical seeding PRNG.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    #[should_panic(expected = "outside range")]
    fn gen_bool_rejects_invalid_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen_bool(1.5);
    }

    #[test]
    fn gen_ratio_matches_expectation_roughly() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_ratio(1, 4)).count();
        assert!((1800..3200).contains(&hits), "hits={hits}");
    }
}
