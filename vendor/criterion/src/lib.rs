//! Offline stand-in for the parts of `criterion` 0.5.1 this workspace uses.
//!
//! Implements benchmark groups with `sample_size` / `measurement_time` /
//! `warm_up_time` / `throughput` knobs, `bench_function`, `bench_with_input`,
//! `BenchmarkId` and the `criterion_group!` / `criterion_main!` macros.  The
//! measurement model is deliberately simple: warm up for the configured time,
//! calibrate a batch size, take `sample_size` wall-clock samples and report
//! the median ns/iter to stdout.  No statistical analysis, plots or saved
//! baselines — the `bench-json` binary in `bakery-bench` is the suite's
//! machine-readable perf baseline.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark (elements or bytes per iteration).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id of the form `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        Self { id: id.to_string() }
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    /// Median ns/iter of the last `iter` call.
    result_ns: f64,
}

impl Bencher {
    /// Times `f`, storing the median ns per iteration.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget is spent, counting iterations
        // to calibrate the batch size.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;
        // Pick a batch size so `sample_size` batches fill the measurement time.
        let target_batch_ns =
            self.measurement.as_nanos() as f64 / self.sample_size.max(1) as f64;
        let batch = ((target_batch_ns / per_iter.max(1.0)).ceil() as u64).max(1);

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size.max(1) {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = samples[samples.len() / 2];
    }
}

/// A named group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement: Duration,
    warm_up: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the measurement time per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement = t;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up = t;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    fn run_one(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            result_ns: f64::NAN,
        };
        f(&mut bencher);
        let mut line = format!(
            "{}/{}: median {:.1} ns/iter",
            self.name, id, bencher.result_ns
        );
        if let Some(Throughput::Elements(n)) = self.throughput {
            let per_sec = n as f64 * 1e9 / bencher.result_ns.max(f64::MIN_POSITIVE);
            line.push_str(&format!(" ({per_sec:.0} elem/s)"));
        }
        println!("{line}");
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        self.run_one(&id.id.clone(), |b| f(b));
        self
    }

    /// Benchmarks `f` under `id` with an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run_one(&id.id.clone(), |b| f(b, input));
        self
    }

    /// Finishes the group (upstream flushes reports here; the stub prints
    /// eagerly, so this is a no-op kept for API compatibility).
    pub fn finish(self) {}
}

/// Benchmark manager (mirrors `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a benchmark group named `name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            measurement: Duration::from_millis(500),
            warm_up: Duration::from_millis(200),
            throughput: None,
            _criterion: self,
        }
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_measures_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        group.throughput(Throughput::Elements(10));
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        group.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        group.finish();
        assert!(ran);
    }
}
