//! Offline stand-in for `loom` 0.7.2.
//!
//! The real loom exhaustively enumerates thread interleavings under the C11
//! memory model.  This stub keeps the same API so `--cfg loom` builds compile
//! offline, but [`model`] only **stress-tests**: it re-runs the closure many
//! times on real OS threads, which catches racy assertion failures
//! probabilistically rather than exhaustively.  See `vendor/README.md`.

#![forbid(unsafe_code)]

/// Number of times [`model`] re-runs the closure (override with
/// `LOOM_STRESS_ITERS`).
fn stress_iters() -> usize {
    std::env::var("LOOM_STRESS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// Runs `f` repeatedly, panicking if any run panics.
///
/// Upstream loom explores every interleaving exactly once; the stub samples
/// interleavings by brute repetition.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    for _ in 0..stress_iters() {
        f();
    }
}

/// Mirrors `loom::thread`.
pub mod thread {
    pub use std::thread::{spawn, yield_now, JoinHandle};
}

/// Mirrors `loom::sync`.
pub mod sync {
    pub use std::sync::{Arc, Mutex};

    /// Mirrors `loom::sync::atomic` by re-exporting the std atomics.
    pub mod atomic {
        pub use std::sync::atomic::*;
    }
}

/// Mirrors `loom::hint`.
pub mod hint {
    pub use std::hint::spin_loop;
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn model_runs_closure_many_times() {
        let runs = Arc::new(AtomicUsize::new(0));
        let observed = Arc::clone(&runs);
        super::model(move || {
            observed.fetch_add(1, Ordering::SeqCst);
        });
        assert!(runs.load(Ordering::SeqCst) >= 2);
    }
}
