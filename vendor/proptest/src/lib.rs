//! Offline stand-in for the parts of `proptest` 1.4.0 this workspace uses.
//!
//! Supports the `proptest! { #[test] fn name(x in strategy, ...) { body } }`
//! form with range strategies over unsigned integers, tuple strategies and
//! `proptest::collection::vec`.  Each test runs a fixed number of cases
//! (default 96, override with `PROPTEST_CASES`) drawn from a deterministic
//! RNG seeded from the test name, so failures are reproducible.  There is no
//! shrinking: a failing case panics with the ordinary assert message.

#![forbid(unsafe_code)]

/// Strategy trait and primitive strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use core::ops::Range;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($ty:ty),*) => {
            $(impl Strategy for Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    let v = (u128::from(rng.next_u64()) * u128::from(span)) >> 64;
                    self.start + v as $ty
                }
            })*
        };
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+)),+ $(,)?) => {
            $(
                #[allow(non_snake_case)]
                impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                    type Value = ($($name::Value,)+);
                    fn sample(&self, rng: &mut TestRng) -> Self::Value {
                        let ($($name,)+) = self;
                        ($($name.sample(rng),)+)
                    }
                }
            )+
        };
    }
    impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D));
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::Range;

    /// Inclusive-exclusive bounds on a generated collection length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self {
                start: exact,
                end: exact + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "empty vec size range");
            Self {
                start: range.start,
                end: range.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy for `Vec`s with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start
                + ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Deterministic case generation machinery.
pub mod test_runner {
    /// Number of cases each `proptest!` test runs.
    pub fn cases() -> usize {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(96)
    }

    /// Deterministic splitmix64 RNG seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG whose stream depends only on `name`.
        pub fn deterministic(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
            for byte in name.bytes() {
                seed ^= u64::from(byte);
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { state: seed }
        }

        /// Next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// The common imports (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests.  Each `fn name(arg in strategy, ...) { body }`
/// expands to a plain `#[test]` that runs the body for
/// [`test_runner::cases`] sampled inputs.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __proptest_rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __proptest_case in 0..$crate::test_runner::cases() {
                    let _ = __proptest_case;
                    $(
                        let $arg = $crate::strategy::Strategy::sample(
                            &($strat),
                            &mut __proptest_rng,
                        );
                    )*
                    $body
                }
            }
        )*
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Skips the current case when its precondition does not hold.
///
/// Expands to a `continue` targeting the case loop generated by
/// [`proptest!`], so it is only usable inside a `proptest!` body (as
/// upstream intends).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 5u64..10, y in 0usize..3) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(y < 3);
        }

        #[test]
        fn tuples_and_vecs_compose(
            pair in (0u64..4, 1usize..5),
            xs in crate::collection::vec(0u64..100, 0..8),
        ) {
            prop_assert!(pair.0 < 4);
            prop_assert!((1..5).contains(&pair.1));
            prop_assert!(xs.len() < 8);
            prop_assert!(xs.iter().all(|&v| v < 100));
        }

        #[test]
        fn assume_skips_cases(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x % 2, 1);
        }
    }

    #[test]
    fn exact_vec_size() {
        let strat = crate::collection::vec(0u64..10, 3);
        let mut rng = crate::test_runner::TestRng::deterministic("exact_vec_size");
        let v = strat.sample(&mut rng);
        assert_eq!(v.len(), 3);
    }
}
