//! Offline stand-in for the parts of `crossbeam` 0.8.4 this workspace uses:
//! [`utils::CachePadded`].

#![forbid(unsafe_code)]

/// Miscellaneous utilities (mirrors `crossbeam::utils`).
pub mod utils {
    use core::fmt;
    use core::ops::{Deref, DerefMut};

    /// Pads and aligns a value to the length of a cache line.
    ///
    /// 128-byte alignment matches upstream crossbeam on x86_64, where the
    /// adjacent-line prefetcher makes pairs of 64-byte lines behave as one
    /// unit of false sharing.
    #[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Pads and aligns `value` to the length of a cache line.
        pub const fn new(value: T) -> Self {
            Self { value }
        }

        /// Returns the inner value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;

        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("CachePadded")
                .field("value", &self.value)
                .finish()
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> Self {
            Self::new(value)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::CachePadded;

        #[test]
        fn aligns_to_128_bytes() {
            assert_eq!(core::mem::align_of::<CachePadded<u64>>(), 128);
            let padded = CachePadded::new(7u64);
            assert_eq!(*padded, 7);
            assert_eq!(padded.into_inner(), 7);
        }
    }
}
